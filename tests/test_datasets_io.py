"""Tests for transaction-file reading and writing."""

from __future__ import annotations

import pytest

from repro.core import Dataset
from repro.datasets.io import iter_transactions, read_transactions, write_transactions
from repro.errors import DatasetError


@pytest.fixture()
def sample_dataset():
    return Dataset.from_transactions([{"milk", "bread"}, {"eggs"}, {"milk", "eggs", "tea"}])


class TestRoundTrip:
    def test_round_trip_without_ids(self, sample_dataset, tmp_path):
        path = tmp_path / "data.txt"
        write_transactions(sample_dataset, path)
        loaded = read_transactions(path)
        assert len(loaded) == len(sample_dataset)
        assert [r.items for r in loaded] == [r.items for r in sample_dataset]
        assert loaded.record_ids == [1, 2, 3]

    def test_round_trip_with_ids(self, tmp_path):
        dataset = Dataset.from_transactions([{"a"}, {"b", "c"}], start_id=50)
        path = tmp_path / "data.txt"
        write_transactions(dataset, path, with_ids=True)
        loaded = read_transactions(path)
        assert loaded.record_ids == [50, 51]
        assert loaded.get(51).items == frozenset({"b", "c"})

    def test_iter_transactions_streams_sets(self, sample_dataset, tmp_path):
        path = tmp_path / "data.txt"
        write_transactions(sample_dataset, path)
        streamed = list(iter_transactions(path))
        assert streamed == [record.items for record in sample_dataset]


class TestParsing:
    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# a comment\n\nmilk bread\n\neggs\n")
        loaded = read_transactions(path)
        assert len(loaded) == 2

    def test_malformed_id_rejected(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("abc|milk bread\n")
        with pytest.raises(DatasetError):
            read_transactions(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("# only a comment\n")
        with pytest.raises(DatasetError):
            read_transactions(path)

    def test_line_with_id_but_no_items_rejected(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("7|   \n")
        with pytest.raises(DatasetError):
            read_transactions(path)

    def test_items_are_read_back_as_strings(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2 3\n")
        loaded = read_transactions(path)
        assert loaded.get(1).items == frozenset({"1", "2", "3"})
