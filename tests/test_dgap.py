"""Unit tests for the d-gap transform."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import dgap
from repro.errors import CompressionError


class TestGapsFromIds:
    def test_paper_example(self):
        # The example of Section 3 ("Compression"): list {2,5,12,15,17,18}.
        assert dgap.gaps_from_ids([2, 5, 12, 15, 17, 18]) == [2, 3, 7, 3, 2, 1]

    def test_single_id(self):
        assert dgap.gaps_from_ids([42]) == [42]

    def test_empty(self):
        assert dgap.gaps_from_ids([]) == []

    def test_first_gap_is_absolute(self):
        assert dgap.gaps_from_ids([10, 11])[0] == 10

    def test_non_increasing_rejected(self):
        with pytest.raises(CompressionError):
            dgap.gaps_from_ids([3, 3])
        with pytest.raises(CompressionError):
            dgap.gaps_from_ids([5, 2])

    def test_negative_rejected(self):
        with pytest.raises(CompressionError):
            dgap.gaps_from_ids([-1, 2])


class TestIdsFromGaps:
    def test_paper_example_inverse(self):
        assert dgap.ids_from_gaps([2, 3, 7, 3, 2, 1]) == [2, 5, 12, 15, 17, 18]

    def test_empty(self):
        assert dgap.ids_from_gaps([]) == []

    def test_zero_gap_rejected_after_first(self):
        with pytest.raises(CompressionError):
            dgap.ids_from_gaps([5, 0])

    def test_negative_first_rejected(self):
        with pytest.raises(CompressionError):
            dgap.ids_from_gaps([-2])


class TestRoundTrip:
    @given(
        st.lists(st.integers(min_value=0, max_value=10**7), min_size=0, max_size=200, unique=True)
    )
    def test_round_trip_sorted_ids(self, ids):
        ids = sorted(ids)
        assert dgap.ids_from_gaps(dgap.gaps_from_ids(ids)) == ids

    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=100)
    )
    def test_gaps_round_trip(self, gaps):
        ids = dgap.ids_from_gaps(gaps)
        assert dgap.gaps_from_ids(ids) == gaps
