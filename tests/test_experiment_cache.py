"""Tests for the process-wide experiment cache and persistence on a file backend."""

from __future__ import annotations

import pytest

from repro.core import OrderedInvertedFile
from repro.datasets.msnbc import MsnbcConfig
from repro.datasets.msweb import MswebConfig
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache
from repro.storage import Environment


@pytest.fixture(autouse=True)
def clean_cache():
    cache.clear()
    yield
    cache.clear()


class TestExperimentCache:
    def test_same_config_returns_same_dataset_object(self):
        config = SyntheticConfig(num_records=200, domain_size=40, seed=1)
        assert cache.synthetic_dataset(config) is cache.synthetic_dataset(config)

    def test_different_configs_return_different_datasets(self):
        first = cache.synthetic_dataset(SyntheticConfig(num_records=200, domain_size=40, seed=1))
        second = cache.synthetic_dataset(SyntheticConfig(num_records=200, domain_size=40, seed=2))
        assert first is not second

    def test_real_dataset_caches(self):
        msweb_config = MswebConfig(num_sessions=200, seed=3)
        msnbc_config = MsnbcConfig(num_sessions=200, seed=3)
        assert cache.msweb_dataset(msweb_config) is cache.msweb_dataset(msweb_config)
        assert cache.msnbc_dataset(msnbc_config) is cache.msnbc_dataset(msnbc_config)

    def test_cached_index_builds_once(self):
        config = SyntheticConfig(num_records=150, domain_size=30, seed=4)
        dataset = cache.synthetic_dataset(config)
        calls = []

        def build():
            calls.append(1)
            return OrderedInvertedFile(dataset)

        first = cache.cached_index(config, "OIF", build)
        second = cache.cached_index(config, "OIF", build)
        assert first is second
        assert len(calls) == 1

    def test_clear_resets_everything(self):
        config = SyntheticConfig(num_records=150, domain_size=30, seed=5)
        dataset = cache.synthetic_dataset(config)
        cache.cached_index(config, "OIF", lambda: OrderedInvertedFile(dataset))
        cache.clear()
        assert cache.synthetic_dataset(config) is not dataset


class TestFileBackedIndex:
    def test_oif_on_a_file_backed_environment(self, tmp_path, paper_dataset):
        env = Environment(path=str(tmp_path / "oif.pages"), page_size=1024, cache_bytes=8192)
        oif = OrderedInvertedFile(paper_dataset, env=env)
        assert oif.subset_query({"a", "d"}) == [101, 104, 114]
        env.close()
        assert (tmp_path / "oif.pages").stat().st_size == env.page_file.num_pages * 1024
