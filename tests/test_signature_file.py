"""Tests for the signature-file extension baseline."""

from __future__ import annotations

import pytest

from repro.baselines import SignatureFile
from repro.errors import IndexBuildError, QueryError
from tests.conftest import sample_queries


class TestSignatures:
    def test_record_signature_is_superimposed(self, skewed_sig):
        items = list(skewed_sig.dataset.vocabulary)[:3]
        combined = skewed_sig.record_signature(items)
        for item in items:
            single = skewed_sig.record_signature([item])
            assert combined & single == single

    def test_signature_deterministic(self, skewed_sig):
        items = list(skewed_sig.dataset.vocabulary)[:4]
        assert skewed_sig.record_signature(items) == skewed_sig.record_signature(items)

    def test_unknown_items_do_not_contribute(self, skewed_sig):
        item = next(iter(skewed_sig.dataset.vocabulary))
        assert skewed_sig.record_signature([item, "unknown"]) == skewed_sig.record_signature(
            [item]
        )

    def test_invalid_parameters_rejected(self, skewed_dataset):
        with pytest.raises(IndexBuildError):
            SignatureFile(skewed_dataset, signature_bits=30)
        with pytest.raises(IndexBuildError):
            SignatureFile(skewed_dataset, bits_per_item=0)


class TestCorrectness:
    def test_paper_examples(self, paper_dataset):
        index = SignatureFile(paper_dataset)
        assert index.subset_query({"a", "d"}) == [101, 104, 114]
        assert index.superset_query({"a", "c"}) == [106, 113]
        assert index.equality_query({"a", "c"}) == [106]

    def test_random_queries_match_oracle(self, skewed_sig, skewed_oracle, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=40, max_size=4, seed=81):
            for query_type in ("subset", "equality", "superset"):
                assert skewed_sig.query(query_type, query) == skewed_oracle.query(
                    query_type, query
                )

    def test_narrow_signatures_still_exact(self, skewed_dataset, skewed_oracle):
        # With very few signature bits there are many false positives, but the
        # verification step must keep the answers exact.
        index = SignatureFile(skewed_dataset, signature_bits=16, bits_per_item=2)
        for query in sample_queries(skewed_dataset, count=25, max_size=3, seed=82):
            assert index.subset_query(query) == skewed_oracle.subset_query(query)

    def test_unknown_item_queries(self, skewed_sig):
        assert skewed_sig.subset_query({"missing"}) == []
        assert skewed_sig.equality_query({"missing"}) == []

    def test_empty_query_rejected(self, skewed_sig):
        with pytest.raises(QueryError):
            skewed_sig.superset_query(set())


class TestCost:
    def test_query_scans_the_whole_signature_file(self, skewed_sig):
        # Unlike the OIF, the signature file always scans every signature page.
        frequent_item = skewed_sig.order.item_at(0)
        rare_item = skewed_sig.order.item_at(len(skewed_sig.order) - 1)
        skewed_sig.drop_cache()
        first = skewed_sig.measured_query("subset", {frequent_item})
        skewed_sig.drop_cache()
        second = skewed_sig.measured_query("subset", {rare_item})
        assert first.page_accesses >= len(skewed_sig._signature_pages)
        assert second.page_accesses >= len(skewed_sig._signature_pages)
