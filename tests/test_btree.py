"""Unit and property tests for the disk-resident B+-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError, DuplicateKeyError, KeyNotFoundError
from repro.storage.btree import BTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import MemoryPageFile
from repro.storage.stats import IOStatistics


def make_tree(page_size=512, capacity=64):
    pager = MemoryPageFile(page_size=page_size)
    stats = IOStatistics()
    pool = BufferPool(pager, capacity=capacity, stats=stats)
    return BTree(pool), stats


def key(i: int) -> bytes:
    return f"k{i:08d}".encode()


class TestBasicOperations:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.first_key() is None
        assert not tree.contains(b"missing")

    def test_insert_and_get(self):
        tree, _ = make_tree()
        tree.insert(b"alpha", b"1")
        tree.insert(b"beta", b"2")
        assert tree.get(b"alpha") == b"1"
        assert tree.get(b"beta") == b"2"

    def test_missing_key_raises(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        with pytest.raises(KeyNotFoundError):
            tree.get(b"b")

    def test_duplicate_insert_rejected(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        with pytest.raises(DuplicateKeyError):
            tree.insert(b"a", b"2")

    def test_replace_overwrites(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        tree.insert(b"a", b"2", replace=True)
        assert tree.get(b"a") == b"2"

    def test_delete(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        tree.insert(b"b", b"2")
        tree.delete(b"a")
        assert not tree.contains(b"a")
        assert tree.contains(b"b")

    def test_delete_missing_raises(self):
        tree, _ = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(b"nope")

    def test_oversized_entry_rejected(self):
        tree, _ = make_tree(page_size=128)
        with pytest.raises(BTreeError):
            tree.insert(b"k", b"v" * 1000)

    def test_items_are_sorted(self):
        tree, _ = make_tree()
        for i in [5, 1, 9, 3, 7]:
            tree.insert(key(i), str(i).encode())
        assert [k for k, _ in tree.items()] == [key(i) for i in [1, 3, 5, 7, 9]]


class TestSplitsAndScale:
    def test_many_inserts_force_splits(self):
        tree, _ = make_tree(page_size=256)
        values = list(range(300))
        random.Random(3).shuffle(values)
        for i in values:
            tree.insert(key(i), f"value-{i}".encode())
        assert len(tree) == 300
        assert tree.height > 1
        tree.check_invariants()
        for i in range(300):
            assert tree.get(key(i)) == f"value-{i}".encode()

    def test_seek_returns_suffix_in_order(self):
        tree, _ = make_tree(page_size=256)
        for i in range(0, 100, 2):
            tree.insert(key(i), b"x")
        found = [k for k, _ in tree.seek(key(51))]
        assert found == [key(i) for i in range(52, 100, 2)]

    def test_seek_on_exact_key_includes_it(self):
        tree, _ = make_tree()
        for i in range(10):
            tree.insert(key(i), b"x")
        found = [k for k, _ in tree.seek(key(4))]
        assert found[0] == key(4)

    def test_seek_past_end_is_empty(self):
        tree, _ = make_tree()
        tree.insert(key(1), b"x")
        assert list(tree.seek(key(2))) == []


class TestBulkLoad:
    def test_bulk_load_round_trip(self):
        tree, _ = make_tree(page_size=256)
        entries = [(key(i), f"payload-{i}".encode()) for i in range(500)]
        tree.bulk_load(iter(entries))
        assert len(tree) == 500
        tree.check_invariants()
        assert tree.get(key(250)) == b"payload-250"

    def test_bulk_load_empty(self):
        tree, _ = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_single_entry(self):
        tree, _ = make_tree()
        tree.bulk_load([(b"only", b"one")])
        assert tree.get(b"only") == b"one"
        assert tree.height == 1

    def test_bulk_load_rejects_unsorted(self):
        tree, _ = make_tree()
        with pytest.raises(BTreeError):
            tree.bulk_load([(b"b", b"1"), (b"a", b"2")])

    def test_bulk_load_rejects_duplicates(self):
        tree, _ = make_tree()
        with pytest.raises(BTreeError):
            tree.bulk_load([(b"a", b"1"), (b"a", b"2")])

    def test_bulk_load_rejects_bad_fill_factor(self):
        tree, _ = make_tree()
        with pytest.raises(BTreeError):
            tree.bulk_load([(b"a", b"1")], fill_factor=2.0)

    def test_bulk_loaded_leaves_are_mostly_sequential_pages(self):
        tree, stats = make_tree(page_size=256, capacity=4)
        entries = [(key(i), b"v" * 40) for i in range(400)]
        tree.bulk_load(iter(entries))
        tree.pool.clear()
        stats.reset()
        list(tree.items())
        # A full scan should be dominated by sequential leaf reads.
        assert stats.sequential_reads > stats.random_reads

    def test_insert_after_bulk_load(self):
        tree, _ = make_tree(page_size=256)
        tree.bulk_load([(key(i), b"v") for i in range(0, 100, 2)])
        tree.insert(key(51), b"new")
        assert tree.get(key(51)) == b"new"
        tree.check_invariants()

    def test_reopen_from_meta_page(self):
        pager = MemoryPageFile(page_size=256)
        pool = BufferPool(pager, capacity=16)
        tree = BTree(pool)
        tree.bulk_load([(key(i), b"v") for i in range(50)])
        reopened = BTree(pool, meta_page_id=tree.meta_page_id)
        assert reopened.get(key(25)) == b"v"
        assert len(reopened) == 50


class TestAgainstDictModel:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=12),
                st.binary(min_size=0, max_size=20),
            ),
            max_size=120,
        )
    )
    def test_matches_dict_semantics(self, operations):
        tree, _ = make_tree(page_size=256)
        model: dict[bytes, bytes] = {}
        for key_bytes, value in operations:
            tree.insert(key_bytes, value, replace=True)
            model[key_bytes] = value
        assert sorted(model) == [k for k, _ in tree.items()]
        for key_bytes, value in model.items():
            assert tree.get(key_bytes) == value
        tree.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=5000), max_size=200), st.data())
    def test_seek_matches_sorted_list(self, ids, data):
        tree, _ = make_tree(page_size=512)
        entries = sorted((key(i), str(i).encode()) for i in ids)
        tree.bulk_load(entries)
        probe = data.draw(st.integers(min_value=0, max_value=5001))
        expected = [k for k, _ in entries if k >= key(probe)]
        assert [k for k, _ in tree.seek(key(probe))] == expected
