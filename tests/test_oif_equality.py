"""Tests for equality query evaluation on the OIF (Section 4.2)."""

from __future__ import annotations

from repro.core import Dataset, OrderedInvertedFile
from tests.conftest import sample_queries


class TestPaperExamples:
    def test_every_record_finds_itself(self, paper_oif, paper_dataset):
        for record in paper_dataset:
            result = paper_oif.equality_query(record.items)
            assert record.record_id in result

    def test_equality_returns_only_exact_matches(self, paper_oif, paper_oracle, paper_dataset):
        for record in paper_dataset:
            assert paper_oif.equality_query(record.items) == paper_oracle.equality_query(
                record.items
            )

    def test_subset_of_a_record_is_not_an_equality_answer(self, paper_oif):
        # {a, b} is a strict subset of several records but equals none.
        assert paper_oif.equality_query({"a", "b"}) == []

    def test_singleton_query(self, paper_oif):
        # Only record 113 is exactly {a}.
        assert paper_oif.equality_query({"a"}) == [113]

    def test_unknown_item_yields_empty(self, paper_oif):
        assert paper_oif.equality_query({"a", "nope"}) == []


class TestAgainstOracle:
    def test_existing_set_values(self, skewed_oif, skewed_oracle, skewed_dataset):
        for record in list(skewed_dataset)[::7]:
            assert skewed_oif.equality_query(record.items) == skewed_oracle.equality_query(
                record.items
            )

    def test_random_queries(self, skewed_oif, skewed_oracle, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=50, max_size=5, seed=23):
            assert skewed_oif.equality_query(query) == skewed_oracle.equality_query(query)

    def test_multiblock_lists(self, larger_dataset):
        from repro.baselines import NaiveScanIndex

        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        oracle = NaiveScanIndex(larger_dataset)
        for query in sample_queries(larger_dataset, count=30, max_size=5, seed=31):
            assert oif.equality_query(query) == oracle.equality_query(query)

    def test_duplicate_set_values_all_returned(self):
        dataset = Dataset.from_transactions([{"x", "y"}, {"x", "y"}, {"x"}, {"y"}])
        oif = OrderedInvertedFile(dataset)
        assert oif.equality_query({"x", "y"}) == [1, 2]
        assert oif.equality_query({"x"}) == [3]
        assert oif.equality_query({"y"}) == [4]


class TestCost:
    def test_equality_touches_few_pages(self, larger_dataset):
        # The RoI of an equality query is a single point, so only a handful of
        # blocks (at most a couple per query item) should be fetched.
        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        record = max(larger_dataset, key=lambda r: r.length)
        oif.drop_cache()
        before = oif.stats.snapshot()
        oif.equality_query(record.items)
        delta = oif.stats.since(before)
        assert delta.page_reads <= 4 * record.length

    def test_equality_is_cheaper_than_subset_on_average(self, larger_dataset):
        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        queries = [record.items for record in list(larger_dataset)[::97] if record.length >= 2]
        subset_pages = 0
        equality_pages = 0
        for items in queries:
            oif.drop_cache()
            before = oif.stats.snapshot()
            oif.subset_query(items)
            subset_pages += oif.stats.since(before).page_reads
            oif.drop_cache()
            before = oif.stats.snapshot()
            oif.equality_query(items)
            equality_pages += oif.stats.since(before).page_reads
        assert equality_pages <= subset_pages


class TestNoMetadataVariant:
    def test_equality_without_metadata_matches_oracle(
        self, skewed_oif_no_metadata, skewed_oracle, skewed_dataset
    ):
        for query in sample_queries(skewed_dataset, count=40, max_size=4, seed=41):
            assert skewed_oif_no_metadata.equality_query(query) == skewed_oracle.equality_query(
                query
            )

    def test_singleton_without_metadata(self, skewed_oif_no_metadata, skewed_oracle):
        item = skewed_oif_no_metadata.order.item_at(0)
        assert skewed_oif_no_metadata.equality_query({item}) == skewed_oracle.equality_query(
            {item}
        )
