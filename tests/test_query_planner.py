"""Planner and cursor tests: selectivity ordering, rarest-first page savings,
streaming ``limit`` cursors and plan shapes."""

from __future__ import annotations

import pytest

from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import (
    And,
    Equality,
    FilterPlan,
    Not,
    Or,
    Planner,
    ProbePlan,
    ScanPlan,
    SlicePlan,
    Subset,
    Superset,
    UnionPlan,
)
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.errors import QueryError


@pytest.fixture(scope="module")
def skewed_dataset() -> Dataset:
    """A zipf-skewed synthetic dataset: item frequencies differ by orders of
    magnitude, so conjunct order makes a measurable page difference."""
    return generate_synthetic(
        SyntheticConfig(num_records=3000, domain_size=120, zipf_order=1.2, seed=11)
    )


@pytest.fixture(scope="module")
def skewed_oif(skewed_dataset) -> OrderedInvertedFile:
    # Small pages and blocks spread the hot lists over many pages, so page
    # counts resolve the plan differences the tests below assert on.
    return OrderedInvertedFile(skewed_dataset, page_size=512, block_capacity=16)


def common_and_rare(dataset: Dataset):
    """A very frequent and the least frequent item of a dataset's vocabulary.

    Rank 1 rather than rank 0: every record containing the rank-0 item has it
    as its smallest item, so the metadata table leaves that list empty and
    its probe reads almost no pages.
    """
    order = dataset.vocabulary.frequency_order()
    return order.item_at(1), order.item_at(order.max_rank)


class TestSelectivity:
    def test_rarer_items_estimate_smaller(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, rare = common_and_rare(skewed_dataset)
        assert planner.selectivity(Subset({rare})) < planner.selectivity(Subset({common}))

    def test_equality_is_at_most_subset(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, _ = common_and_rare(skewed_dataset)
        items = frozenset({common})
        assert planner.selectivity(Equality(items)) <= planner.selectivity(Subset(items))

    def test_boolean_estimates_stay_in_unit_interval(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, rare = common_and_rare(skewed_dataset)
        exprs = [
            And((Subset({common}), Subset({rare}))),
            Or((Subset({common}), Subset({rare}))),
            Not(Subset({common})),
            Superset(frozenset({common, rare})),
        ]
        for expr in exprs:
            assert 0.0 <= planner.selectivity(expr) <= 1.0


class TestPlanShapes:
    def test_and_plans_probe_plus_residual_filter(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, rare = common_and_rare(skewed_dataset)
        plan = planner.plan(And((Subset({common}), Subset({rare}))))
        assert isinstance(plan, FilterPlan)
        assert isinstance(plan.source, ProbePlan)
        assert plan.source.leaf == Subset({rare}), "the rare conjunct must drive"
        assert plan.residual == (Subset({common}),)

    def test_reversed_planner_drives_with_the_frequent_conjunct(self, skewed_dataset):
        planner = Planner(skewed_dataset, rarest_first=False)
        common, rare = common_and_rare(skewed_dataset)
        plan = planner.plan(And((Subset({common}), Subset({rare}))))
        assert isinstance(plan, FilterPlan)
        assert plan.source.leaf == Subset({common})

    def test_or_plans_to_a_union(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, rare = common_and_rare(skewed_dataset)
        plan = planner.plan(Or((Subset({common}), Subset({rare}))))
        assert isinstance(plan, UnionPlan)
        assert len(plan.sources) == 2

    def test_pure_negation_falls_back_to_a_scan(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, _ = common_and_rare(skewed_dataset)
        assert isinstance(planner.plan(Not(Subset({common}))), ScanPlan)

    def test_limit_wraps_the_plan_in_a_slice(self, skewed_dataset):
        planner = Planner(skewed_dataset)
        common, _ = common_and_rare(skewed_dataset)
        plan = planner.plan(Subset({common}).limit(5, offset=2))
        assert isinstance(plan, SlicePlan)
        assert plan.count == 5 and plan.offset == 2

    def test_explain_renders_every_node(self, skewed_oif):
        common, rare = common_and_rare(skewed_oif.dataset)
        cursor = skewed_oif.execute(
            And((Subset({common}), Subset({rare}), Not(Superset({common, rare}))))
        )
        rendered = cursor.explain()
        assert "probe" in rendered and "filter" in rendered


class TestRarestFirstPages:
    def test_rarest_first_and_reads_no_more_pages_than_reversed(self, skewed_oif):
        """Acceptance: driving with the rare conjunct cannot read more pages."""
        common, rare = common_and_rare(skewed_oif.dataset)
        expr = And((Subset({common}), Subset({rare})))

        skewed_oif.drop_cache()
        rarest = skewed_oif.measured_execute(expr)
        skewed_oif.drop_cache()
        reversed_ = skewed_oif.measured_execute(
            expr, planner=Planner(skewed_oif.dataset, rarest_first=False)
        )

        assert rarest.record_ids == reversed_.record_ids
        assert rarest.page_accesses <= reversed_.page_accesses
        # On this skew the gap is strict: the common item's list spans many
        # more pages than the rare item's.
        assert rarest.page_accesses < reversed_.page_accesses

    def test_both_orders_agree_with_brute_force(self, skewed_oif):
        common, rare = common_and_rare(skewed_oif.dataset)
        expr = And((Subset({common}), Subset({rare})))
        expected = sorted(
            record.record_id
            for record in skewed_oif.dataset
            if expr.matches(record.items)
        )
        for planner in (None, Planner(skewed_oif.dataset, rarest_first=False)):
            skewed_oif.drop_cache()
            assert sorted(skewed_oif.execute(expr, planner=planner)) == expected


class TestStreamingLimit:
    def test_limit_touches_fewer_pages_than_full_materialization(self, skewed_oif):
        """Acceptance: a limited subset cursor stops reading blocks early."""
        common, _ = common_and_rare(skewed_oif.dataset)
        skewed_oif.drop_cache()
        full = skewed_oif.measured_execute(Subset({common}))
        skewed_oif.drop_cache()
        limited = skewed_oif.measured_execute(Subset({common}).limit(3))

        assert len(limited.record_ids) == 3
        assert set(limited.record_ids) <= set(full.record_ids)
        assert limited.page_accesses < full.page_accesses

    def test_limit_and_offset_slice_the_stream(self, skewed_oif):
        common, _ = common_and_rare(skewed_oif.dataset)
        skewed_oif.drop_cache()
        stream = skewed_oif.execute(Subset({common})).fetch_all()
        skewed_oif.drop_cache()
        sliced = skewed_oif.execute(Subset({common}).limit(4, offset=2)).fetch_all()
        assert sliced == stream[2:6]

    def test_cursor_fetch_and_exhaustion(self, skewed_oif):
        common, _ = common_and_rare(skewed_oif.dataset)
        cursor = skewed_oif.execute(Subset({common}))
        first = cursor.fetch(5)
        assert len(first) == 5 and cursor.consumed == 5
        rest = cursor.fetch_all()
        assert cursor.exhausted
        assert len(first) + len(rest) == len(skewed_oif.subset_query({common}))

    def test_fetch_rejects_negative_counts(self, skewed_oif):
        common, _ = common_and_rare(skewed_oif.dataset)
        with pytest.raises(QueryError):
            skewed_oif.execute(Subset({common})).fetch(-1)

    def test_zero_limit_yields_nothing(self, skewed_oif):
        common, _ = common_and_rare(skewed_oif.dataset)
        assert skewed_oif.evaluate(Subset({common}).limit(0)) == []
