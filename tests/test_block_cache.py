"""Decoded-block cache: budget/LRU semantics, accounting, invalidation.

The cache's contract has two halves:

* **semantics** — byte-budgeted LRU keyed by ``(page_id, offset)``, cleared
  on rebuild/flush/``drop_cache``, exact hit/miss counters under N threads;
* **accounting neutrality** — a decode hit skips CPU, never simulated I/O:
  page counts and result sets are bit-identical with the cache on, off, hot
  or cold, which is what keeps the paper's page-access figures comparable.
"""

from __future__ import annotations

import threading

import pytest

from repro.compression.postings import PostingColumns, decode_columns, encode_columns
from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import Subset
from repro.errors import BufferPoolError
from repro.storage.block_cache import DecodedBlockCache
from repro.storage.stats import IOStatistics, ReadContext
from tests.conftest import PAPER_TRANSACTIONS


def _columns(count: int, start: int = 1) -> PostingColumns:
    ids = list(range(start, start + count))
    return decode_columns(encode_columns(ids, [2] * count))


class TestCacheSemantics:
    def test_get_put_and_counters(self):
        cache = DecodedBlockCache(1 << 16)
        assert cache.get((1, 0)) is None
        cache.put((1, 0), _columns(4))
        hit = cache.get((1, 0))
        assert list(hit.ids) == [1, 2, 3, 4]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.resident_blocks == 1

    def test_byte_budget_evicts_lru(self):
        entry = _columns(8)
        budget = entry.nbytes * 2  # room for exactly two entries
        cache = DecodedBlockCache(budget)
        cache.put((1, 0), _columns(8))
        cache.put((2, 0), _columns(8))
        cache.get((1, 0))  # freshen (1, 0): (2, 0) becomes the LRU victim
        cache.put((3, 0), _columns(8))
        assert cache.get((1, 0)) is not None
        assert cache.get((2, 0)) is None
        assert cache.get((3, 0)) is not None
        assert cache.evictions == 1
        assert cache.resident_bytes <= budget

    def test_oversized_entry_is_not_cached(self):
        cache = DecodedBlockCache(8)
        cache.put((1, 0), _columns(100))
        assert cache.resident_blocks == 0

    def test_invalidate_clears_everything(self):
        cache = DecodedBlockCache(1 << 16)
        cache.put((1, 0), _columns(4))
        cache.invalidate()
        assert cache.resident_blocks == 0
        assert cache.resident_bytes == 0
        assert cache.invalidations == 1
        assert cache.get((1, 0)) is None

    def test_non_positive_budget_rejected(self):
        with pytest.raises(BufferPoolError):
            DecodedBlockCache(0)

    def test_lookups_charge_context_and_stats(self):
        stats = IOStatistics()
        cache = DecodedBlockCache(1 << 16, stats=stats)
        ctx = ReadContext()
        cache.get((1, 0), ctx)
        cache.put((1, 0), _columns(4))
        cache.get((1, 0), ctx)
        assert (ctx.decoded_hits, ctx.decoded_misses) == (1, 1)
        assert (stats.decoded_hits, stats.decoded_misses) == (1, 1)
        snapshot = ctx.snapshot()
        assert snapshot.decoded_hits == 1 and snapshot.decoded_misses == 1

    def test_hit_miss_counters_exact_under_threads(self):
        stats = IOStatistics()
        cache = DecodedBlockCache(1 << 20, stats=stats)
        keys = [(page, 0) for page in range(8)]
        lookups_per_thread = 400
        threads = 6
        contexts = [ReadContext() for _ in range(threads)]
        barrier = threading.Barrier(threads)

        def worker(ctx: ReadContext) -> None:
            barrier.wait(timeout=10.0)
            for step in range(lookups_per_thread):
                key = keys[step % len(keys)]
                if cache.get(key, ctx) is None:
                    cache.put(key, _columns(4))

        pool = [threading.Thread(target=worker, args=(ctx,)) for ctx in contexts]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in pool)

        total_lookups = threads * lookups_per_thread
        assert cache.hits + cache.misses == total_lookups
        assert sum(c.decoded_hits + c.decoded_misses for c in contexts) == total_lookups
        assert sum(c.decoded_hits for c in contexts) == cache.hits == stats.decoded_hits
        assert sum(c.decoded_misses for c in contexts) == cache.misses == stats.decoded_misses


class TestOIFIntegration:
    @pytest.fixture()
    def dataset(self) -> Dataset:
        return Dataset.from_transactions(PAPER_TRANSACTIONS)

    def test_repeat_query_hits_the_cache_with_identical_io(self, dataset):
        oif = OrderedInvertedFile(dataset, block_capacity=2)
        expr = Subset(frozenset(["a", "b"]))

        oif.env.drop_cache()  # cold buffer pool, decoded cache intact
        first = oif.measured_execute(expr)
        oif.env.drop_cache()
        second = oif.measured_execute(expr)

        assert second.record_ids == first.record_ids
        # The decoded cache removes decode CPU only: the repeat traversal
        # still pays exactly the same page accesses.
        assert second.page_accesses == first.page_accesses
        assert second.random_reads == first.random_reads
        assert second.sequential_reads == first.sequential_reads
        assert first.decoded_misses > 0
        assert second.decoded_hits == first.decoded_hits + first.decoded_misses
        assert second.decoded_misses == 0

    def test_results_and_pages_identical_with_cache_disabled(self, dataset):
        cached = OrderedInvertedFile(dataset, block_capacity=2)
        uncached = OrderedInvertedFile(dataset, block_capacity=2, decoded_cache_bytes=0)
        assert uncached.decoded_cache is None
        for items in ({"a"}, {"a", "b"}, {"c", "d"}, {"a", "b", "c"}):
            expr = Subset(frozenset(items))
            for _ in range(2):  # second round hits the warm decoded cache
                with_cache = cached.measured_execute(expr)
                without = uncached.measured_execute(expr)
                assert with_cache.record_ids == without.record_ids
                assert with_cache.page_accesses == without.page_accesses

    def test_rebuild_and_drop_cache_invalidate(self, dataset):
        oif = OrderedInvertedFile(dataset, block_capacity=2)
        # "b" has a real inverted list ("a", the most frequent item, is fully
        # covered by its metadata region, so querying it decodes no blocks).
        oif.evaluate(Subset(frozenset(["b"])))
        assert oif.decoded_cache.resident_blocks > 0
        invalidations = oif.decoded_cache.invalidations
        oif.drop_cache()
        assert oif.decoded_cache.resident_blocks == 0
        assert oif.decoded_cache.invalidations == invalidations + 1
        oif.evaluate(Subset(frozenset(["b"])))
        assert oif.decoded_cache.resident_blocks > 0
        oif.build()
        assert oif.decoded_cache.resident_blocks == 0

    def test_counters_surface_in_query_result(self, dataset):
        oif = OrderedInvertedFile(dataset, block_capacity=2)
        oif.drop_cache()
        result = oif.measured_execute(Subset(frozenset(["a", "b"])))
        assert result.decoded_hits + result.decoded_misses > 0
