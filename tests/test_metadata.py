"""Unit tests for the metadata table (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core.metadata import MetadataRegion, MetadataTable


def region(rank, lower, upper, singleton_upper=None):
    return MetadataRegion(
        item_rank=rank,
        lower=lower,
        upper=upper,
        singleton_upper=lower - 1 if singleton_upper is None else singleton_upper,
    )


class TestMetadataRegion:
    def test_contains(self):
        r = region(0, 5, 10)
        assert 5 in r and 10 in r and 7 in r
        assert 4 not in r and 11 not in r

    def test_size(self):
        assert region(0, 5, 10).size == 6
        assert region(0, 5, 5).size == 1

    def test_singleton_and_multi_item_ranges(self):
        r = region(0, 1, 10, singleton_upper=3)
        assert list(r.singleton_ids) == [1, 2, 3]
        assert list(r.multi_item_ids) == [4, 5, 6, 7, 8, 9, 10]

    def test_empty_singleton_range(self):
        r = region(0, 5, 10)
        assert list(r.singleton_ids) == []
        assert list(r.multi_item_ids) == list(range(5, 11))


class TestMetadataTable:
    def test_lookup(self):
        table = MetadataTable({0: region(0, 1, 4), 2: region(2, 5, 9)})
        assert table.region_for(0).upper == 4
        assert table.region_for(1) is None
        assert table.contains(2, 7)
        assert not table.contains(2, 10)
        assert not table.contains(3, 1)

    def test_len_and_iteration(self):
        table = MetadataTable({0: region(0, 1, 4), 1: region(1, 5, 6)})
        assert len(table) == 2
        assert {r.item_rank for r in table} == {0, 1}

    def test_covered_postings(self):
        table = MetadataTable({0: region(0, 1, 4), 1: region(1, 5, 6)})
        assert table.covered_postings() == 4 + 2

    def test_validate_partition_accepts_contiguous_regions(self):
        table = MetadataTable({0: region(0, 1, 4), 3: region(3, 5, 9), 5: region(5, 10, 12)})
        table.validate_partition(12)

    def test_validate_partition_detects_gap(self):
        table = MetadataTable({0: region(0, 1, 4), 3: region(3, 6, 9)})
        with pytest.raises(AssertionError):
            table.validate_partition(9)

    def test_validate_partition_detects_missing_tail(self):
        table = MetadataTable({0: region(0, 1, 4)})
        with pytest.raises(AssertionError):
            table.validate_partition(10)

    def test_validate_partition_detects_rank_disorder(self):
        table = MetadataTable({5: region(5, 1, 4), 2: region(2, 5, 8)})
        with pytest.raises(AssertionError):
            table.validate_partition(8)

    def test_validate_partition_detects_bad_singleton_bound(self):
        table = MetadataTable({0: region(0, 1, 4, singleton_upper=9)})
        with pytest.raises(AssertionError):
            table.validate_partition(4)
