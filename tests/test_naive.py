"""Tests for the brute-force oracle itself (it must be trivially correct)."""

from __future__ import annotations

import pytest

from repro.baselines import NaiveScanIndex
from repro.core import Dataset
from repro.errors import QueryError


@pytest.fixture()
def tiny_index():
    dataset = Dataset.from_transactions([{"a", "b"}, {"a"}, {"b", "c"}, {"a", "b", "c"}])
    return NaiveScanIndex(dataset)


class TestNaiveScan:
    def test_subset(self, tiny_index):
        assert tiny_index.subset_query({"a"}) == [1, 2, 4]
        assert tiny_index.subset_query({"a", "b"}) == [1, 4]
        assert tiny_index.subset_query({"a", "b", "c"}) == [4]
        assert tiny_index.subset_query({"z"}) == []

    def test_equality(self, tiny_index):
        assert tiny_index.equality_query({"a", "b"}) == [1]
        assert tiny_index.equality_query({"a"}) == [2]
        assert tiny_index.equality_query({"c"}) == []

    def test_superset(self, tiny_index):
        assert tiny_index.superset_query({"a", "b"}) == [1, 2]
        assert tiny_index.superset_query({"a", "b", "c"}) == [1, 2, 3, 4]
        assert tiny_index.superset_query({"c"}) == []

    def test_empty_query_rejected(self, tiny_index):
        with pytest.raises(QueryError):
            tiny_index.subset_query(set())

    def test_dispatch(self, tiny_index):
        assert tiny_index.query("subset", {"a"}) == tiny_index.subset_query({"a"})

    def test_results_are_sorted(self, tiny_index):
        for query_type in ("subset", "equality", "superset"):
            result = tiny_index.query(query_type, {"a", "b"})
            assert result == sorted(result)
