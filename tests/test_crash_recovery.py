"""kill -9 recovery: a SIGKILLed server restarts with every acked update intact.

These tests drive a real ``repro-oif serve`` subprocess — separate
interpreter, real sockets, real files — so the recovery path is exercised
exactly as an operator would hit it.  They are excluded from the fast CI step
and run in a dedicated recovery step under ``pytest-timeout``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

from tests.conftest import make_skewed_transactions

pytestmark = pytest.mark.timeout(120)

BASE = [sorted(t) for t in make_skewed_transactions(120, seed=9)]
STREAM = [sorted(t | {f"s{i}"}) for i, t in enumerate(make_skewed_transactions(60, seed=10))]
PROBES = ["a", "b", "c", "d", "s1", "s5", "s20"]


class ServeProcess:
    """One ``python -m repro.cli serve`` subprocess bound to a free port."""

    def __init__(self, data_dir: str, *extra: str) -> None:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--port", "0", "--data-dir", data_dir, *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        deadline = time.time() + 60.0
        lines = []
        while time.time() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited before binding:\n{''.join(lines)}"
                )
            lines.append(line)
            if line.startswith("serving on http://"):
                return int(line.split(":")[-1].split()[0].rstrip("/"))
        raise AssertionError(f"server never bound a port:\n{''.join(lines)}")

    def kill9(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


def probe_answers(client: ServiceClient, name: str) -> dict:
    return {
        item: client.query(name, "subset", [item])["record_ids"] for item in PROBES
    }


def test_sigkill_mid_update_stream_loses_no_acked_update(tmp_path):
    crash_dir = str(tmp_path / "crash")
    control_dir = str(tmp_path / "control")

    # -- crashed run: stream updates, SIGKILL after the 25th ack ------------------
    server = ServeProcess(crash_dir)
    acked: list[list[str]] = []
    try:
        client = ServiceClient(port=server.port, timeout=30.0)
        client.create_index("crash", transactions=BASE)
        for i, transaction in enumerate(STREAM):
            client.insert("crash", [transaction])
            acked.append(transaction)  # response received => must survive kill -9
            if i == 24:
                break
        client.close()
    finally:
        server.kill9()

    # -- restart from the same directory ------------------------------------------
    recovered = ServeProcess(crash_dir)
    try:
        client = ServiceClient(port=recovered.port, timeout=30.0)
        recovered_answers = probe_answers(client, "crash")
        client.close()
    finally:
        recovered.stop()

    # -- control: a never-crashed server fed exactly the acked prefix --------------
    control = ServeProcess(control_dir)
    try:
        client = ServiceClient(port=control.port, timeout=30.0)
        client.create_index("crash", transactions=BASE)
        for transaction in acked:
            client.insert("crash", [transaction])
        control_answers = probe_answers(client, "crash")
        client.close()
    finally:
        control.stop()

    assert recovered_answers == control_answers, (
        "results after kill -9 + restart must be byte-identical to a run "
        "that never crashed"
    )


def test_sigkill_after_checkpoint_and_more_updates(tmp_path):
    """Checkpoint + post-checkpoint WAL records both survive the kill."""
    data_dir = str(tmp_path / "data")
    server = ServeProcess(data_dir)
    try:
        client = ServiceClient(port=server.port, timeout=30.0)
        client.create_index("crash", transactions=BASE)
        client.insert("crash", [STREAM[0]])
        assert client.checkpoint("crash")["generation"] == 1
        client.insert("crash", [STREAM[1], STREAM[2]])
        client.delete("crash", [1, 2])
        expected = probe_answers(client, "crash")
        client.close()
    finally:
        server.kill9()

    recovered = ServeProcess(data_dir)
    try:
        client = ServiceClient(port=recovered.port, timeout=30.0)
        assert probe_answers(client, "crash") == expected
        # The recovered index is fully live: updates and checkpoints work.
        client.insert("crash", [["post", "recovery"]])
        assert client.query("crash", "subset", ["post"])["record_ids"]
        assert client.checkpoint("crash")["generation"] >= 2
        client.close()
    finally:
        recovered.stop()


def test_recovered_server_reports_replayed_records(tmp_path):
    data_dir = str(tmp_path / "data")
    server = ServeProcess(data_dir)
    try:
        client = ServiceClient(port=server.port, timeout=30.0)
        client.create_index("crash", transactions=BASE)
        client.insert("crash", [STREAM[0], STREAM[1]])
        client.close()
    finally:
        server.kill9()

    recovered = ServeProcess(data_dir)
    try:
        client = ServiceClient(port=recovered.port, timeout=30.0)
        metrics = client.metrics()
        assert 'repro_wal_records_replayed_total{index="crash"}' in metrics
        client.close()
    finally:
        recovered.stop()


def test_fsync_never_still_recovers_after_clean_process_death(tmp_path):
    """'never' skips fsync, not the OS write: SIGKILL (no power loss) keeps data."""
    data_dir = str(tmp_path / "data")
    server = ServeProcess(data_dir, "--fsync", "never")
    try:
        client = ServiceClient(port=server.port, timeout=30.0)
        client.create_index("crash", transactions=BASE)
        client.insert("crash", [STREAM[0]])
        expected = probe_answers(client, "crash")
        client.close()
    finally:
        server.kill9()
    recovered = ServeProcess(data_dir, "--fsync", "never")
    try:
        client = ServiceClient(port=recovered.port, timeout=30.0)
        assert probe_answers(client, "crash") == expected
        client.close()
    finally:
        recovered.stop()
