"""Sharding through the service stack: manager, executor, HTTP wire, CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import Dataset
from repro.core.query import Subset
from repro.core.updates import UpdatableShardedOIF
from repro.datasets.io import write_transactions
from repro.errors import ServiceError
from repro.service import (
    IndexManager,
    QueryExecutor,
    ResultCache,
    ServiceClient,
    ServiceServer,
)

TRANSACTIONS = [
    {"a", "b", "g"}, {"a", "e"}, {"a", "b", "e", "f"}, {"a", "b", "d"},
    {"a", "b", "c", "f"}, {"a", "c"}, {"d", "h"}, {"a", "b", "f"},
    {"b", "c"}, {"b", "g", "j"}, {"a", "b", "c"}, {"d", "i"},
    {"a"}, {"a", "d"}, {"a", "c", "j"}, {"c", "i"}, {"a", "c", "h"}, {"c", "d"},
] * 3


@pytest.fixture()
def dataset() -> Dataset:
    return Dataset.from_transactions(TRANSACTIONS)


class TestManagerSharding:
    def test_create_with_shards_builds_a_sharded_handle(self, dataset):
        manager = IndexManager()
        entry = manager.create("s", dataset, kind="oif", shards=3)
        assert isinstance(entry._handle, UpdatableShardedOIF)
        description = entry.describe()
        assert description["shards"] == 3
        assert sum(description["shard_records"]) == len(dataset)
        assert description["pending_per_shard"] == [0, 0, 0]
        assert description["records"] == len(dataset)

    def test_sharded_and_monolithic_entries_answer_identically(self, dataset):
        manager = IndexManager()
        manager.create("mono", dataset, kind="oif")
        manager.create("sharded", dataset, kind="oif", shards=4)
        expr = Subset(frozenset(["a", "b"]))
        mono_ids, _, mono_stats = manager.get("mono").measured_expr(expr)
        sharded_ids, delta, shard_stats = manager.get("sharded").measured_expr(expr)
        assert sharded_ids == mono_ids
        assert mono_stats is None
        assert shard_stats is not None
        assert delta.page_reads == sum(stat.page_accesses for stat in shard_stats)
        assert delta.random_reads + delta.sequential_reads == delta.page_reads
        assert sum(stat.matches for stat in shard_stats) == len(sharded_ids)

    def test_shards_option_is_validated(self, dataset):
        manager = IndexManager()
        with pytest.raises(ServiceError):
            manager.create("bad", dataset, kind="oif", shards=0)
        with pytest.raises(ServiceError):
            manager.create("bad", dataset, kind="oif", shards="four")
        with pytest.raises(ServiceError):
            manager.create("bad", dataset, kind="naive", shards=2)
        # Failed creates must release the name reservation.
        manager.create("bad", dataset, kind="oif", shards=2)

    def test_strategy_without_sharding_is_rejected(self, dataset):
        manager = IndexManager()
        with pytest.raises(ServiceError, match="strategy"):
            manager.create("bad", dataset, kind="oif", strategy="round_robin")
        with pytest.raises(ServiceError, match="strategy"):
            manager.create("bad", dataset, kind="oif", shards=1, strategy="hash")

    def test_build_workers_is_validated_like_shards(self, dataset):
        manager = IndexManager()
        with pytest.raises(ServiceError, match="build_workers"):
            manager.create("bad", dataset, kind="oif", build_workers=2)
        with pytest.raises(ServiceError, match="build_workers"):
            manager.create("bad", dataset, kind="oif", shards=2, build_workers=0)
        manager.create("good", dataset, kind="oif", shards=2, build_workers=2)

    def test_shards_1_builds_the_monolithic_handle(self, dataset):
        manager = IndexManager()
        entry = manager.create("one", dataset, kind="oif", shards=1)
        assert not isinstance(entry._handle, UpdatableShardedOIF)
        assert "shards" not in entry.describe()

    def test_insert_flush_rebuild_cycle_preserves_answers(self, dataset):
        manager = IndexManager()
        manager.create("mono", dataset, kind="oif")
        manager.create("sharded", dataset, kind="oif", shards=4, strategy="round_robin")
        batch = [["a", "zz"], ["zz", "b"]]
        assert manager.insert("mono", batch) == manager.insert("sharded", batch)
        expr = Subset(frozenset(["zz"]))
        assert (
            manager.get("sharded").evaluate(expr)
            == manager.get("mono").evaluate(expr)
        )
        report = manager.flush("sharded")
        assert report.records_merged == 2
        manager.rebuild("sharded")
        entry = manager.get("sharded")
        assert isinstance(entry._handle, UpdatableShardedOIF), "rebuild keeps sharding"
        assert entry.evaluate(expr) == manager.get("mono").evaluate(expr)

    def test_fanout_borrows_the_caller_pool_without_deadlock(self, dataset):
        """Sharded fan-out shares the query pool; saturation runs tasks inline.

        Regression for the removed per-entry fan-out pool: even a 1-worker
        executor — where the submitting worker IS the whole pool — must
        answer sharded queries (the fan-out tasks are cancelled off the full
        queue and executed by the caller itself).
        """
        manager = IndexManager()
        manager.create("s", dataset, kind="oif", shards=4)
        with QueryExecutor(manager, cache=None, max_workers=1) as executor:
            outcome = executor.execute_expr("s", Subset(frozenset(["a"])))
        assert outcome.shard_stats is not None and len(outcome.shard_stats) == 4
        oracle = sorted(
            record.record_id for record in dataset if "a" in record.items
        )
        assert list(outcome.record_ids) == oracle

    def test_dropped_entry_refuses_served_queries_and_writes(self, dataset):
        from repro.errors import UnknownIndexError

        manager = IndexManager()
        entry = manager.create("s", dataset, kind="oif", shards=2)
        with QueryExecutor(manager, cache=None, max_workers=2) as executor:
            manager.drop("s")
            assert entry.dropped
            # The serving path refuses the name, and a retained entry
            # reference refuses writes — nothing lands in a discarded handle.
            with pytest.raises(UnknownIndexError):
                executor.execute_expr("s", Subset(frozenset(["a"])))
            with pytest.raises(UnknownIndexError):
                entry.insert([["a", "b"]])


class TestExecutorSharding:
    def test_outcome_carries_the_shard_breakdown(self, dataset):
        cache = ResultCache(capacity=32)
        manager = IndexManager(result_cache=cache)
        manager.create("s", dataset, kind="oif", shards=3)
        with QueryExecutor(manager, cache=cache, max_workers=2) as executor:
            outcome = executor.execute_expr("s", Subset(frozenset(["a"])))
            assert outcome.shard_stats is not None
            assert len(outcome.shard_stats) == 3
            assert outcome.page_accesses == sum(
                stat.page_accesses for stat in outcome.shard_stats
            )
            payload = outcome.as_dict()
            assert [entry["shard"] for entry in payload["shards"]] == [0, 1, 2]
            # A cache hit never touches the shards again.
            hit = executor.execute_expr("s", Subset(frozenset(["a"])))
            assert hit.cached and hit.shard_stats is None

    def test_serving_stats_aggregate_per_shard(self, dataset):
        manager = IndexManager()
        manager.create("s", dataset, kind="oif", shards=2)
        with QueryExecutor(manager, cache=None, max_workers=2) as executor:
            executor.execute_expr("s", Subset(frozenset(["a"])))
            executor.execute_expr("s", Subset(frozenset(["b"])))
            stats = executor.stats.as_dict()
        breakdown = stats["per_index_shards"]["s"]
        assert sorted(breakdown) == ["0", "1"]
        assert all(slot["queries"] == 2 for slot in breakdown.values())
        assert (
            sum(slot["matches"] for slot in breakdown.values())
            <= stats["queries"] * len(dataset)
        )


class TestServerSharding:
    def test_create_query_and_stats_over_the_wire(self, dataset):
        with ServiceServer(port=0) as server:
            client = ServiceClient(host=server.host, port=server.port)
            description = client.create_index(
                "wire",
                transactions=[sorted(record.items) for record in dataset],
                shards=3,
            )
            assert description["shards"] == 3
            assert sum(description["shard_records"]) == len(dataset)

            response = client.query("wire", "subset", ["a", "b"])
            oracle = [
                record.record_id
                for record in dataset
                if {"a", "b"} <= set(record.items)
            ]
            assert response["record_ids"] == oracle
            assert [entry["shard"] for entry in response["shards"]] == [0, 1, 2]

            stats = client.stats()
            assert "wire" in stats["serving"]["per_index_shards"]
            described = {entry["name"]: entry for entry in client.indexes()}
            assert described["wire"]["shards"] == 3

    def test_entries_answer_after_server_shutdown(self, dataset):
        """No per-entry threads exist any more: a shut-down server's manager
        keeps answering sharded queries serially (fan-out needs no pool)."""
        server = ServiceServer(port=0)
        with server:
            client = ServiceClient(host=server.host, port=server.port)
            client.create_index(
                "wire",
                transactions=[sorted(record.items) for record in dataset],
                shards=2,
            )
            client.query("wire", "subset", ["a"])
        entry = server.manager.get("wire")
        ids, _, shard_stats = entry.measured_expr(Subset(frozenset(["a"])))
        assert len(ids) > 0 and shard_stats is not None

    def test_shutdown_leaves_an_external_manager_armed(self, dataset):
        manager = IndexManager()
        manager.create("mine", dataset, kind="oif", shards=2)
        with ServiceServer(port=0, manager=manager) as server:
            client = ServiceClient(host=server.host, port=server.port)
            client.query("mine", "subset", ["a"])
        # The embedder's manager outlives the server and keeps answering.
        entry = manager.get("mine")
        ids, _, shard_stats = entry.measured_expr(Subset(frozenset(["a"])))
        assert len(ids) > 0 and shard_stats is not None
        manager.close()  # compatibility no-op
        ids_again, _, _ = entry.measured_expr(Subset(frozenset(["a"])))
        assert ids_again == ids

    def test_invalid_shards_is_a_client_error(self, dataset):
        with ServiceServer(port=0) as server:
            client = ServiceClient(host=server.host, port=server.port)
            with pytest.raises(ServiceError, match="shards"):
                client.create_index("bad", transactions=[["a"]], shards=-2)

    def test_conflicting_shards_values_are_rejected(self, dataset):
        with ServiceServer(port=0) as server:
            client = ServiceClient(host=server.host, port=server.port)
            with pytest.raises(ServiceError, match="conflicting 'shards'"):
                client._request(
                    "POST",
                    "/indexes",
                    {
                        "name": "bad",
                        "transactions": [["a"]],
                        "shards": 2,
                        "options": {"shards": 8},
                    },
                )
            # Agreeing values are fine (the top-level field is sugar).
            description = client._request(
                "POST",
                "/indexes",
                {
                    "name": "ok",
                    "transactions": [["a"], ["a", "b"]],
                    "shards": 2,
                    "options": {"shards": 2},
                },
            )
            assert description["shards"] == 2


class TestCliSharding:
    @pytest.fixture()
    def transaction_file(self, tmp_path, dataset):
        path = tmp_path / "data.txt"
        write_transactions(dataset, path)
        return str(path)

    def test_query_with_shards_matches_unsharded(self, transaction_file, capsys):
        assert main(["query", transaction_file, "subset", "a", "b"]) == 0
        unsharded = capsys.readouterr().out.splitlines()[0]
        assert main(["query", transaction_file, "subset", "a", "b", "--shards", "4"]) == 0
        sharded = capsys.readouterr().out.splitlines()[0]
        assert sharded == unsharded

    def test_query_shards_explain_prints_fanout(self, transaction_file, capsys):
        code = main([
            "query", transaction_file, "subset", "a", "--shards", "2", "--explain",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "fanout over 2 shard(s)" in output
        assert "matching records" in output

    @pytest.mark.parametrize("command", [
        ["query", "{data}", "subset", "a", "--shards", "0"],
        ["serve", "--shards", "-2"],
        ["client", "create", "x", "{data}", "--shards", "0"],
    ])
    def test_non_positive_shards_rejected_at_parse_time(
        self, transaction_file, capsys, command
    ):
        argv = [part.format(data=transaction_file) for part in command]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err
