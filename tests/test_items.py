"""Unit tests for the vocabulary and the frequency order <_D (Equation 1)."""

from __future__ import annotations

import pytest

from repro.core.items import ItemOrder, Vocabulary
from repro.errors import DatasetError, QueryError


class TestVocabulary:
    def test_from_transactions_counts_supports(self):
        vocabulary = Vocabulary.from_transactions([{"a", "b"}, {"a"}, {"a", "c"}])
        assert vocabulary.support("a") == 3
        assert vocabulary.support("b") == 1
        assert vocabulary.support("c") == 1
        assert vocabulary.support("zzz") == 0

    def test_duplicates_within_a_transaction_count_once(self):
        vocabulary = Vocabulary.from_transactions([["a", "a", "b"]])
        assert vocabulary.support("a") == 1

    def test_len_and_contains(self):
        vocabulary = Vocabulary.from_transactions([{"a", "b"}])
        assert len(vocabulary) == 2
        assert "a" in vocabulary
        assert "q" not in vocabulary

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            Vocabulary({})

    def test_non_positive_support_rejected(self):
        with pytest.raises(DatasetError):
            Vocabulary({"a": 0})

    def test_items_with_support_iterates_all(self):
        vocabulary = Vocabulary({"a": 3, "b": 1})
        assert dict(vocabulary.items_with_support()) == {"a": 3, "b": 1}


class TestFrequencyOrder:
    def test_most_frequent_item_is_smallest(self):
        vocabulary = Vocabulary({"x": 1, "y": 5, "z": 3})
        order = vocabulary.frequency_order()
        assert order.item_at(0) == "y"
        assert order.item_at(1) == "z"
        assert order.item_at(2) == "x"

    def test_ties_broken_alphabetically(self):
        vocabulary = Vocabulary({"b": 2, "a": 2, "c": 2})
        order = vocabulary.frequency_order()
        assert order.items_in_order() == ("a", "b", "c")

    def test_paper_example_order(self, paper_dataset):
        # In Figure 1, item a is the most frequent, then b, c, d...
        order = paper_dataset.vocabulary.frequency_order()
        assert order.item_at(0) == "a"
        assert order.item_at(1) == "b"
        assert order.item_at(2) == "c"
        assert order.item_at(3) == "d"

    def test_compare_follows_rank(self):
        order = Vocabulary({"a": 5, "b": 1}).frequency_order()
        assert order.compare("a", "b") < 0
        assert order.compare("b", "a") > 0
        assert order.compare("a", "a") == 0


class TestItemOrder:
    def test_rank_round_trip(self):
        order = ItemOrder(["x", "y", "z"])
        for rank, item in enumerate("xyz"):
            assert order.rank_of(item) == rank
            assert order.item_at(rank) == item

    def test_unknown_item_raises(self):
        order = ItemOrder(["x"])
        with pytest.raises(QueryError):
            order.rank_of("q")

    def test_try_rank_of_returns_none(self):
        order = ItemOrder(["x"])
        assert order.try_rank_of("q") is None
        assert order.try_rank_of("x") == 0

    def test_rank_out_of_range(self):
        order = ItemOrder(["x"])
        with pytest.raises(QueryError):
            order.item_at(5)

    def test_duplicate_items_rejected(self):
        with pytest.raises(DatasetError):
            ItemOrder(["x", "x"])

    def test_empty_order_rejected(self):
        with pytest.raises(DatasetError):
            ItemOrder([])

    def test_ranks_of_sorts_ascending(self):
        order = ItemOrder(["a", "b", "c", "d"])
        assert order.ranks_of({"d", "a", "c"}) == (0, 2, 3)

    def test_items_of_inverse(self):
        order = ItemOrder(["a", "b", "c"])
        assert order.items_of((2, 0)) == ("c", "a")

    def test_max_rank(self):
        order = ItemOrder(["a", "b", "c"])
        assert order.max_rank == 2

    def test_support_recorded(self):
        order = Vocabulary({"a": 9, "b": 2}).frequency_order()
        assert order.support("a") == 9
        assert order.support("missing") == 0

    def test_mixed_type_items_are_supported(self):
        vocabulary = Vocabulary.from_transactions([{1, "a"}, {1}])
        order = vocabulary.frequency_order()
        assert order.rank_of(1) == 0
        assert order.rank_of("a") == 1
