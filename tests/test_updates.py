"""Tests for the batch-update machinery (delta index + merges, Section 4.4)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import NaiveScanIndex
from repro.core import Dataset
from repro.core.updates import DeltaInvertedFile, UpdatableIF, UpdatableOIF
from repro.core.records import Record
from repro.errors import QueryError
from tests.conftest import make_skewed_transactions


@pytest.fixture()
def base_dataset():
    return Dataset.from_transactions(make_skewed_transactions(300, seed=91))


@pytest.fixture()
def fresh_transactions():
    # Restricted to the head of the vocabulary so every item already exists in
    # the base dataset (the IF's in-place merge requires known items).
    return make_skewed_transactions(60, vocabulary="abcdefgh", seed=92)


class TestDeltaInvertedFile:
    def test_queries_over_buffered_records(self):
        delta = DeltaInvertedFile()
        delta.add(Record(10, frozenset({"a", "b"})))
        delta.add(Record(11, frozenset({"a"})))
        delta.add(Record(12, frozenset({"b", "c"})))
        assert delta.subset_query({"a"}) == [10, 11]
        assert delta.equality_query({"a"}) == [11]
        assert delta.superset_query({"a", "b"}) == [10, 11]
        assert len(delta) == 3

    def test_clear(self):
        delta = DeltaInvertedFile()
        delta.add(Record(1, frozenset({"a"})))
        delta.clear()
        assert len(delta) == 0
        assert delta.subset_query({"a"}) == []

    def test_unknown_query_type_rejected(self):
        delta = DeltaInvertedFile()
        with pytest.raises(QueryError):
            delta.query("between", {"a"})

    def test_records_property_sorted_by_id(self):
        delta = DeltaInvertedFile()
        delta.add(Record(5, frozenset({"a"})))
        delta.add(Record(3, frozenset({"b"})))
        assert [record.record_id for record in delta.records] == [3, 5]


class TestUpdatableIndexes:
    @pytest.mark.parametrize("wrapper_class", [UpdatableOIF, UpdatableIF])
    def test_inserted_records_visible_before_flush(self, base_dataset, wrapper_class):
        wrapper = wrapper_class(base_dataset)
        new_ids = wrapper.insert([{"a", "b"}])
        assert wrapper.pending_updates == 1
        result = wrapper.subset_query({"a", "b"})
        assert new_ids[0] in result

    @pytest.mark.parametrize("wrapper_class", [UpdatableOIF, UpdatableIF])
    def test_flush_preserves_query_answers(self, base_dataset, fresh_transactions, wrapper_class):
        wrapper = wrapper_class(base_dataset)
        wrapper.insert(fresh_transactions)
        answers_before = {
            query_type: wrapper.__getattribute__(f"{query_type}_query")({"a", "b"})
            for query_type in ("subset", "equality", "superset")
        }
        report = wrapper.flush()
        assert wrapper.pending_updates == 0
        assert report.records_merged == len(fresh_transactions)
        assert report.merge_seconds > 0
        for query_type, before in answers_before.items():
            after = wrapper.__getattribute__(f"{query_type}_query")({"a", "b"})
            assert after == before

    @pytest.mark.parametrize("wrapper_class", [UpdatableOIF, UpdatableIF])
    def test_flush_result_matches_oracle(self, base_dataset, fresh_transactions, wrapper_class):
        wrapper = wrapper_class(base_dataset)
        wrapper.insert(fresh_transactions)
        wrapper.flush()
        oracle = NaiveScanIndex(wrapper.dataset)
        rng = random.Random(17)
        vocabulary = sorted(wrapper.dataset.vocabulary, key=str)
        for _ in range(25):
            query = set(rng.sample(vocabulary, rng.randint(1, 4)))
            for query_type in ("subset", "equality", "superset"):
                assert wrapper.__getattribute__(f"{query_type}_query")(query) == oracle.query(
                    query_type, query
                )

    def test_empty_insert_rejected(self, base_dataset):
        wrapper = UpdatableOIF(base_dataset)
        with pytest.raises(QueryError):
            wrapper.insert([set()])

    def test_new_ids_continue_after_existing_ones(self, base_dataset):
        wrapper = UpdatableIF(base_dataset)
        new_ids = wrapper.insert([{"a"}, {"b"}])
        assert new_ids == [len(base_dataset) + 1, len(base_dataset) + 2]

    def test_multiple_flushes(self, base_dataset):
        wrapper = UpdatableIF(base_dataset)
        for seed in (1, 2):
            wrapper.insert(make_skewed_transactions(20, seed=seed))
            wrapper.flush()
        assert len(wrapper.dataset) == len(base_dataset) + 40

    def test_oif_update_report_counts_io(self, base_dataset, fresh_transactions):
        wrapper = UpdatableOIF(base_dataset)
        wrapper.insert(fresh_transactions)
        report = wrapper.flush()
        assert report.page_writes > 0
        assert report.seconds_per_record > 0

    def test_update_cost_shape_oif_slower_than_if(self, base_dataset, fresh_transactions):
        # The paper reports OIF batch updates to be a few times slower than IF
        # batch updates (it must re-sort and rebuild).  At the tiny sizes used
        # in tests we only assert the direction, not the exact factor.
        updatable_if = UpdatableIF(base_dataset)
        updatable_if.insert(fresh_transactions)
        if_report = updatable_if.flush()

        updatable_oif = UpdatableOIF(base_dataset)
        updatable_oif.insert(fresh_transactions)
        oif_report = updatable_oif.flush()

        assert oif_report.merge_seconds > if_report.merge_seconds
