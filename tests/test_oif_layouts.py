"""Tests for the OIF's physical block layouts (paged pointers vs inline blocks).

The default layout mirrors Berkeley DB's treatment of large data items: the
B-tree leaves hold keys plus small pointers and the posting blocks live on
dedicated data pages, so pruned blocks never cost a data-page access.  The
``inline_blocks=True`` variant stores the postings next to the keys.  Both
must return identical answers; they differ only in I/O behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import OrderedInvertedFile
from repro.core.oif import BlockRef
from repro.core.roi import RangeOfInterest
from tests.conftest import sample_queries


@pytest.fixture(scope="module")
def paged_oif(larger_dataset):
    return OrderedInvertedFile(larger_dataset, block_capacity=16)


@pytest.fixture(scope="module")
def inline_oif(larger_dataset):
    return OrderedInvertedFile(larger_dataset, block_capacity=16, inline_blocks=True)


class TestLayoutEquivalence:
    def test_same_answers_for_all_predicates(self, paged_oif, inline_oif, larger_dataset):
        for query in sample_queries(larger_dataset, count=25, max_size=4, seed=61):
            for query_type in ("subset", "equality", "superset"):
                assert paged_oif.query(query_type, query) == inline_oif.query(
                    query_type, query
                ), (query_type, query)

    def test_same_block_structure(self, paged_oif, inline_oif):
        assert paged_oif.build_report.num_blocks == inline_oif.build_report.num_blocks
        assert paged_oif.build_report.num_postings == inline_oif.build_report.num_postings

    def test_same_posting_bytes(self, paged_oif, inline_oif):
        # The encoded postings are identical; only their placement differs.
        assert paged_oif.posting_bytes == inline_oif.posting_bytes

    def test_blocks_decode_identically(self, paged_oif, inline_oif):
        whole = RangeOfInterest(lower=(), upper=(paged_oif.domain_size - 1,))
        for rank in range(min(paged_oif.domain_size, 5)):
            paged_blocks = [
                (key.tag, block.postings()) for key, block in paged_oif.scan_blocks(rank, whole)
            ]
            inline_blocks = [
                (key.tag, block.postings()) for key, block in inline_oif.scan_blocks(rank, whole)
            ]
            assert paged_blocks == inline_blocks


class TestBlockRef:
    def test_paged_ref_reports_length_without_loading(self, paged_oif):
        whole = RangeOfInterest(lower=(), upper=(paged_oif.domain_size - 1,))
        _key, block = next(iter(paged_oif.scan_blocks(1, whole)))
        assert isinstance(block, BlockRef)
        assert block.encoded_length > 0
        assert block.encoded_length == len(block.raw())

    def test_inline_ref_round_trips(self, inline_oif):
        whole = RangeOfInterest(lower=(), upper=(inline_oif.domain_size - 1,))
        _key, block = next(iter(inline_oif.scan_blocks(1, whole)))
        assert block.raw() == inline_oif._codec.encode(block.postings())

    def test_skipping_blocks_avoids_data_pages(self, paged_oif):
        """Scanning keys without loading blocks must not touch the data pages.

        This is the property that makes the candidate-range narrowing save
        I/O: iterating ``scan_blocks`` reads only B-tree pages until a block's
        postings are actually requested.
        """
        whole = RangeOfInterest(lower=(), upper=(paged_oif.domain_size - 1,))
        rank = 0 if paged_oif.metadata.region_for(0) is None else 1

        paged_oif.drop_cache()
        before = paged_oif.stats.snapshot()
        blocks = list(paged_oif.scan_blocks(rank, whole))
        keys_only_pages = paged_oif.stats.since(before).page_reads

        paged_oif.drop_cache()
        before = paged_oif.stats.snapshot()
        for _key, block in paged_oif.scan_blocks(rank, whole):
            block.postings()
        with_data_pages = paged_oif.stats.since(before).page_reads

        assert len(blocks) > 1
        assert keys_only_pages < with_data_pages


class TestLayoutCostDifference:
    def test_both_layouts_report_costs(self, paged_oif, inline_oif, larger_dataset):
        """Both layouts expose the same instrumentation; costs are positive.

        Which layout wins depends on the data size: at tiny scales the inline
        layout touches fewer pages (keys and postings share a page), while at
        the experiment scales the paged layout wins because pruned blocks skip
        their data pages entirely (see the skipping test above and the |D|
        sweeps in EXPERIMENTS.md).  Here we only assert the accounting works
        for both.
        """
        query = next(iter(sample_queries(larger_dataset, count=1, max_size=3, seed=63)))
        for index in (paged_oif, inline_oif):
            index.drop_cache()
            result = index.measured_query("subset", query)
            assert result.page_accesses > 0
            assert result.io_time_ms > 0
