"""Tests for the query workload generator (the paper's query methodology)."""

from __future__ import annotations

import pytest

from repro.baselines import NaiveScanIndex
from repro.core.interfaces import QueryType
from repro.errors import WorkloadError
from repro.workloads import WorkloadGenerator, answer_counts


@pytest.fixture(scope="module")
def generator(skewed_dataset):
    return WorkloadGenerator(skewed_dataset, seed=7)


class TestSingleQueries:
    def test_subset_queries_always_have_answers(self, generator, skewed_oracle):
        for size in (1, 2, 3, 4):
            for _ in range(5):
                query = generator.subset_query(size)
                assert query.size == size
                answers = skewed_oracle.subset_query(query.items)
                assert query.source_record_id in answers

    def test_equality_queries_match_their_source_record(self, generator, skewed_dataset, skewed_oracle):
        for size in (1, 2, 3, 4):
            query = generator.equality_query(size)
            answers = skewed_oracle.equality_query(query.items)
            assert query.source_record_id in answers
            assert skewed_dataset.get(query.source_record_id).items == query.items

    def test_equality_falls_back_to_nearest_available_size(self, generator, skewed_dataset):
        huge = max(record.length for record in skewed_dataset) + 5
        query = generator.equality_query(huge)
        assert query.size <= huge

    def test_superset_queries_cover_their_source_record(self, generator, skewed_dataset, skewed_oracle):
        for size in (2, 4, 6):
            query = generator.superset_query(size)
            assert query.size == size
            answers = skewed_oracle.superset_query(query.items)
            assert query.source_record_id in answers
            assert skewed_dataset.get(query.source_record_id).items <= query.items

    def test_impossible_sizes_rejected(self, generator, skewed_dataset):
        too_big = max(record.length for record in skewed_dataset) + 1
        with pytest.raises(WorkloadError):
            generator.subset_query(too_big)

    def test_query_dispatch(self, generator):
        assert generator.query("subset", 2).query_type is QueryType.SUBSET
        assert generator.query(QueryType.SUPERSET, 3).query_type is QueryType.SUPERSET


class TestWorkloads:
    def test_workload_size_and_grouping(self, generator):
        workload = generator.workload("subset", sizes=[2, 3], queries_per_size=4)
        assert len(workload) == 8
        grouped = workload.by_size()
        assert set(grouped) == {2, 3}
        assert all(len(queries) == 4 for queries in grouped.values())

    def test_workload_is_reproducible(self, skewed_dataset):
        first = WorkloadGenerator(skewed_dataset, seed=99).workload("subset", [2, 3], 5)
        second = WorkloadGenerator(skewed_dataset, seed=99).workload("subset", [2, 3], 5)
        assert [q.items for q in first] == [q.items for q in second]

    def test_different_seeds_give_different_workloads(self, skewed_dataset):
        first = WorkloadGenerator(skewed_dataset, seed=1).workload("subset", [3], 10)
        second = WorkloadGenerator(skewed_dataset, seed=2).workload("subset", [3], 10)
        assert [q.items for q in first] != [q.items for q in second]

    def test_mixed_workload_covers_all_predicates(self, generator):
        workloads = generator.mixed_workload(sizes=[2], queries_per_size=2)
        assert set(workloads) == set(QueryType)

    def test_invalid_parameters_rejected(self, generator):
        with pytest.raises(WorkloadError):
            generator.workload("subset", [2], queries_per_size=0)
        with pytest.raises(WorkloadError):
            generator.workload("subset", [0], queries_per_size=1)

    def test_every_generated_query_has_an_answer(self, generator, skewed_dataset):
        # The paper evaluates only queries with non-empty answers; the
        # generator must guarantee that by construction.
        oracle = NaiveScanIndex(skewed_dataset)
        for query_type in QueryType:
            workload = generator.workload(query_type, sizes=[2, 3], queries_per_size=5)
            counts = answer_counts(workload, oracle)
            assert all(count >= 1 for count in counts)
