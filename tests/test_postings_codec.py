"""Unit tests for the posting-list / posting-block codecs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import Posting, PostingBlockCodec, PostingListCodec, postings_from_pairs
from repro.errors import CompressionError


def make_postings(pairs):
    return postings_from_pairs(pairs)


class TestPostingListCodec:
    def test_round_trip_compressed(self):
        codec = PostingListCodec(compress=True)
        postings = make_postings([(1, 3), (5, 2), (12, 7), (100, 1)])
        assert codec.decode(codec.encode(postings)) == postings

    def test_round_trip_uncompressed(self):
        codec = PostingListCodec(compress=False)
        postings = make_postings([(1, 3), (5, 2), (12, 7)])
        assert codec.decode(codec.encode(postings)) == postings

    def test_empty_list(self):
        codec = PostingListCodec()
        assert codec.encode([]) == b""
        assert codec.decode(b"") == []

    def test_compression_shrinks_dense_lists(self):
        dense = make_postings([(i, 4) for i in range(10_000, 10_400)])
        compressed = PostingListCodec(compress=True).encode(dense)
        plain = PostingListCodec(compress=False).encode(dense)
        assert len(compressed) < len(plain)

    def test_unsorted_postings_rejected(self):
        codec = PostingListCodec()
        with pytest.raises(CompressionError):
            codec.encode(make_postings([(5, 1), (3, 1)]))

    def test_duplicate_ids_rejected(self):
        codec = PostingListCodec()
        with pytest.raises(CompressionError):
            codec.encode(make_postings([(5, 1), (5, 2)]))

    def test_negative_length_rejected(self):
        codec = PostingListCodec()
        with pytest.raises(CompressionError):
            codec.encode([Posting(1, -1)])

    def test_encoded_size_matches_encode(self):
        codec = PostingListCodec()
        postings = make_postings([(3, 2), (9, 5), (1000, 12)])
        assert codec.encoded_size(postings) == len(codec.encode(postings))

    def test_encoded_size_matches_encode_uncompressed(self):
        codec = PostingListCodec(compress=False)
        postings = make_postings([(3, 2), (9, 5), (1000, 12)])
        assert codec.encoded_size(postings) == len(codec.encode(postings))


class TestContinuation:
    def test_append_without_decoding(self):
        codec = PostingListCodec(compress=True)
        old = make_postings([(1, 2), (7, 3)])
        new = make_postings([(9, 1), (20, 4)])
        combined_bytes = codec.encode(old) + codec.encode_continuation(new, previous_last_id=7)
        assert codec.decode(combined_bytes) == old + new

    def test_continuation_requires_larger_ids(self):
        codec = PostingListCodec()
        with pytest.raises(CompressionError):
            codec.encode_continuation(make_postings([(5, 1)]), previous_last_id=7)

    def test_continuation_from_zero_equals_encode(self):
        codec = PostingListCodec()
        postings = make_postings([(2, 1), (8, 2)])
        assert codec.encode_continuation(postings, 0) == codec.encode(postings)

    def test_negative_previous_rejected(self):
        codec = PostingListCodec()
        with pytest.raises(CompressionError):
            codec.encode_continuation(make_postings([(2, 1)]), -1)

    def test_uncompressed_continuation(self):
        codec = PostingListCodec(compress=False)
        old = make_postings([(1, 2)])
        new = make_postings([(9, 1)])
        combined = codec.encode(old) + codec.encode_continuation(new, 1)
        assert codec.decode(combined) == old + new


class TestBlockCodec:
    def test_block_codec_shares_wire_format(self):
        postings = make_postings([(10, 2), (11, 3), (40, 1)])
        assert PostingBlockCodec().encode(postings) == PostingListCodec().encode(postings)

    def test_blocks_restart_gap_chain(self):
        codec = PostingBlockCodec()
        first = make_postings([(100, 2), (110, 3)])
        second = make_postings([(120, 1), (150, 2)])
        # Each block decodes independently (absolute first id per block).
        assert codec.decode(codec.encode(first)) == first
        assert codec.decode(codec.encode(second)) == second


posting_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=50)),
    max_size=150,
).map(
    lambda pairs: [
        Posting(record_id, length)
        for record_id, length in sorted({rid: ln for rid, ln in pairs}.items())
    ]
)


class TestProperties:
    @given(posting_lists, st.booleans())
    def test_round_trip(self, postings, compress):
        codec = PostingListCodec(compress=compress)
        assert codec.decode(codec.encode(postings)) == postings

    @given(posting_lists, st.booleans())
    def test_encoded_size_is_exact(self, postings, compress):
        codec = PostingListCodec(compress=compress)
        assert codec.encoded_size(postings) == len(codec.encode(postings))

    @given(posting_lists, posting_lists)
    def test_split_and_continue(self, old, new):
        codec = PostingListCodec()
        last_id = old[-1].record_id if old else 0
        new = [posting for posting in new if posting.record_id > last_id]
        data = codec.encode(old) + codec.encode_continuation(new, last_id)
        assert codec.decode(data) == old + new
