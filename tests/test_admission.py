"""Overload control: admission gates, deadlines, shed accounting, client retry.

Covers the full stack top to bottom: the :class:`AdmissionController` gates
in isolation, the executor's shed/deadline integration (including exact
page-access accounting at the buffer-pool boundary and no thread leaks), the
deadline shipping across the multiprocess shard backend, the HTTP status
mapping (429 + ``Retry-After``, 408, 404, 400) and the client's typed
exceptions, idempotent-only retries and capped jittered backoff.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro import deadline as deadline_mod
from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import Subset
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    ServiceHTTPError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service import IndexManager, QueryExecutor, ResultCache, ServiceClient, ServiceServer
from repro.service.admission import AdmissionController
from repro.service.executor import QueryRequest
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import MemoryPageFile
from repro.storage.stats import IOStatistics

TRANSACTIONS = [
    {"a", "b", "d", "g"},
    {"a", "b", "e"},
    {"a", "b", "e", "f"},
    {"a", "b", "d"},
    {"a", "b", "c", "f"},
    {"a", "c"},
    {"d", "h"},
    {"a", "b", "f"},
    {"b", "c"},
    {"b", "g", "j"},
]


# -- the controller in isolation -------------------------------------------------------


class TestAdmissionController:
    def test_queue_bound_sheds_with_reason_and_hint(self):
        controller = AdmissionController(1, max_queue=1)
        controller.admit("web")  # fills the single worker
        controller.admit("web")  # waits in the queue (bound 1)
        with pytest.raises(OverloadedError) as caught:
            controller.admit("web")
        assert caught.value.reason == "queue_full"
        assert caught.value.retry_after > 0.0
        # A freed slot readmits.
        controller.release("web", started=False)
        controller.admit("web")
        assert controller.snapshot()["shed"] == {"queue_full": 1}

    def test_per_index_limit_sheds_only_the_hot_index(self):
        controller = AdmissionController(4, max_inflight_per_index=1)
        controller.admit("hot")
        with pytest.raises(OverloadedError) as caught:
            controller.admit("hot")
        assert caught.value.reason == "index_limit"
        controller.admit("cold")  # other tenants are unaffected
        controller.release("hot", started=False)
        controller.admit("hot")  # freed slot readmits

    def test_release_restores_all_accounting(self):
        controller = AdmissionController(2, max_queue=8, max_inflight_per_index=4)
        controller.admit("web")
        controller.started()
        controller.release("web", started=True, service_time_s=0.2)
        snapshot = controller.snapshot()
        assert snapshot["queue_depth"] == 0
        assert snapshot["running"] == 0
        assert snapshot["per_index_inflight"] == {}
        assert snapshot["service_time_ewma_ms"] == pytest.approx(200.0)

    def test_retry_after_scales_with_backlog(self):
        controller = AdmissionController(1, max_queue=100)
        controller.admit("web")
        controller.started()
        controller.release("web", started=True, service_time_s=0.5)
        idle_hint = controller.retry_after()
        for _ in range(4):
            controller.admit("web")
        assert controller.retry_after() > idle_hint
        assert controller.retry_after() <= 30.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(1, max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(1, max_inflight_per_index=0)


# -- deadline primitive and the page-access boundary -----------------------------------


class TestDeadline:
    def test_non_positive_budget_raises_immediately(self):
        with pytest.raises(DeadlineExceededError):
            deadline_mod.Deadline.after_ms(0)

    def test_expired_deadline_stops_get_page_before_charging(self):
        pager = MemoryPageFile(page_size=64)
        stats = IOStatistics()
        pool = BufferPool(pager, capacity=2, stats=stats)
        page_id = pager.allocate()
        token = deadline_mod.activate(deadline_mod.Deadline.after_ms(0.001))
        try:
            time.sleep(0.002)
            with pytest.raises(DeadlineExceededError):
                pool.get_page(page_id)
        finally:
            deadline_mod.deactivate(token)
        # The check fires *before* the access is charged: nothing half-counted.
        assert stats.logical_reads == 0
        assert stats.page_reads == 0
        # Disarmed, the same access proceeds and charges exactly one read.
        pool.get_page(page_id)
        assert stats.logical_reads == 1
        assert stats.page_reads == 1

    def test_check_is_noop_without_a_deadline(self):
        assert deadline_mod.current() is None
        deadline_mod.check()  # must not raise

    def test_wrap_carries_the_deadline_to_another_thread(self):
        token = deadline_mod.activate(deadline_mod.Deadline.after_ms(60_000))
        try:
            wrapped = deadline_mod.wrap(lambda: deadline_mod.current())
        finally:
            deadline_mod.deactivate(token)
        seen = []
        thread = threading.Thread(target=lambda: seen.append(wrapped()))
        thread.start()
        thread.join()
        assert seen[0] is not None
        assert deadline_mod.current() is None

    def test_deadline_error_pickles(self):
        error = DeadlineExceededError("query deadline exceeded (12.0 ms past)")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, DeadlineExceededError)
        assert "12.0 ms" in str(clone)


# -- executor integration --------------------------------------------------------------


@pytest.fixture()
def serving():
    dataset = Dataset.from_transactions(
        [frozenset(str(i) for i in t) for t in TRANSACTIONS]
    )
    cache = ResultCache(capacity=64)
    manager = IndexManager(result_cache=cache)
    manager.create("web", dataset, kind="oif")
    with QueryExecutor(
        manager, cache=cache, max_workers=1, max_queue=1, max_inflight_per_index=8
    ) as executor:
        yield manager, executor


def test_executor_sheds_when_the_queue_is_full(serving):
    manager, executor = serving
    entry = manager.get("web")
    with entry.lock.write_locked():
        # The single worker blocks on the read lock, a second distinct query
        # fills the one queue slot — the third must be shed, not parked.
        running = executor.submit("web", "subset", {"a"})
        waiting = executor.submit("web", "subset", {"f"})
        with pytest.raises(OverloadedError) as caught:
            executor.submit("web", "subset", {"b"})
        assert caught.value.reason == "queue_full"
        assert caught.value.retry_after > 0.0
    assert running.result(timeout=5.0).record_ids
    assert waiting.result(timeout=5.0).record_ids is not None
    assert executor.stats.shed == {"queue_full": 1}
    assert executor.admission.queue_depth == 0
    assert executor.admission.running == 0


def test_cache_and_dedup_bypass_admission(serving):
    manager, executor = serving
    warm = executor.execute("web", "subset", {"a", "b"})
    assert warm.cached is False
    entry = manager.get("web")
    with entry.lock.write_locked():
        blocked = executor.submit("web", "subset", {"c"})
        deadline = time.monotonic() + 5.0
        while executor.admission.running == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        # A cached answer needs no worker slot and is never shed ...
        assert executor.execute("web", "subset", {"a", "b"}).cached is True
        # ... and an identical in-flight query piggybacks instead of queueing.
        mirror = executor.submit("web", "subset", {"c"})
    assert blocked.result(timeout=5.0).record_ids == mirror.result(timeout=5.0).record_ids
    assert mirror.result().deduplicated is True
    assert executor.stats.shed == {}


def test_deadline_expired_in_queue_returns_promptly_without_reading(serving):
    manager, executor = serving
    entry = manager.get("web")
    with entry.lock.write_locked():
        running = executor.submit("web", "subset", {"d"})
        deadline = time.monotonic() + 5.0
        while executor.admission.running == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        expiring = executor.submit_request(
            QueryRequest.of("web", Subset(frozenset({"e"})), deadline_ms=20.0)
        )
        time.sleep(0.05)  # the budget expires while the request sits queued
    assert running.result(timeout=5.0).record_ids
    started = time.perf_counter()
    with pytest.raises(DeadlineExceededError):
        expiring.result(timeout=5.0)
    assert (time.perf_counter() - started) < 1.0
    outcome = executor.stats.as_dict()
    assert outcome["deadline_expired"] == 1
    assert outcome["deadline_expired_per_index"] == {"web": 1}
    assert executor.admission.queue_depth == 0
    assert executor.admission.running == 0


def test_expired_queries_leak_no_threads(serving):
    _, executor = serving
    executor.execute("web", "subset", {"a"})  # pool thread exists already
    before = threading.active_count()
    for _ in range(5):
        with pytest.raises(DeadlineExceededError):
            executor.submit_request(
                QueryRequest.of("web", Subset(frozenset({"a", "b", "c"})), deadline_ms=0.001)
            ).result(timeout=5.0)
    assert threading.active_count() == before
    # The executor still serves normally afterwards.
    assert executor.execute("web", "subset", {"a"}).record_ids


# -- deadline across the multiprocess shard backend ------------------------------------


def test_worker_side_deadline_arms_and_stops_page_reads():
    from repro.core.shard import procpool

    dataset = Dataset.from_transactions(
        [frozenset(str(i) for i in t) for t in TRANSACTIONS]
    )
    procpool._WORKER_SHARDS[0] = OrderedInvertedFile(dataset)
    try:
        task = procpool._Task(
            positions=(0,),
            expr=Subset(frozenset({"a"})).to_dict(),
            cap=None,
            sort=True,
            shm_threshold=0,
            traced=False,
            deadline_ms=0.001,
        )
        time.sleep(0.002)
        with pytest.raises(DeadlineExceededError):
            procpool._worker_evaluate(task)
        # The worker-local deadline is disarmed even on the raise path.
        assert deadline_mod.current() is None
        # Without a budget the same task answers normally.
        plain = procpool._Task(
            positions=(0,),
            expr=Subset(frozenset({"a"})).to_dict(),
            cap=None,
            sort=True,
            shm_threshold=0,
            traced=False,
        )
        (entry,) = procpool._worker_evaluate(plain)
        assert procpool._unpack_ids(entry["ids"])
    finally:
        procpool._WORKER_SHARDS.clear()


def test_expired_deadline_fails_procpool_fanout_before_dispatch():
    from repro.core.shard import ShardProcessPool, ShardedIndex

    dataset = Dataset.from_transactions(
        [frozenset(str(i) for i in t) for t in TRANSACTIONS]
    )
    index = ShardedIndex(dataset, 2, catalog_pages=True)
    pool = ShardProcessPool(index, 1)
    index.attach_process_pool(pool)
    try:
        token = deadline_mod.activate(deadline_mod.Deadline.after_ms(0.001))
        try:
            time.sleep(0.002)
            with pytest.raises(DeadlineExceededError):
                index.execute(Subset(frozenset({"a"}))).fetch_all()
        finally:
            deadline_mod.deactivate(token)
        # The pool survives the expiry and serves the next query.
        ids = index.execute(Subset(frozenset({"a"}))).fetch_all()
        assert ids
    finally:
        pool.close()


# -- HTTP mapping and the client -------------------------------------------------------


@pytest.fixture()
def overload_server():
    with ServiceServer(
        max_workers=1, cache_capacity=32, max_queue=0, max_inflight_per_index=8
    ) as running:
        client = ServiceClient(port=running.port, max_retries=0)
        client.create_index("web", transactions=TRANSACTIONS)
        yield running, client


def test_http_shed_answers_429_with_retry_after(overload_server):
    server, client = overload_server
    entry = server.manager.get("web")
    with entry.lock.write_locked():
        mistimed = threading.Thread(
            target=lambda: client.query("web", "subset", ["a"])
        )
        mistimed.start()
        deadline = time.monotonic() + 5.0
        while server.executor.admission.running == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        shed_client = ServiceClient(port=server.port, max_retries=0)
        with pytest.raises(ServiceOverloadedError) as caught:
            shed_client.query("web", "subset", ["b"])
    mistimed.join(timeout=5.0)
    assert caught.value.status == 429
    assert caught.value.retry_after is not None and caught.value.retry_after > 0.0
    stats = client.stats()
    assert stats["serving"]["shed"]["queue_full"] >= 1
    assert stats["admission"]["max_queue"] == 0
    assert "repro_shed_total" in client.metrics()


def test_http_deadline_expiry_answers_408(overload_server):
    server, client = overload_server
    with pytest.raises(ServiceTimeoutError) as caught:
        client.query("web", "subset", ["a", "b", "c"], deadline_ms=0.001)
    assert caught.value.status == 408
    stats = client.stats()
    assert stats["serving"]["deadline_expired"] >= 1
    assert "repro_deadline_expired_total" in client.metrics()
    # The server keeps serving normally after the expiry.
    assert client.query("web", "subset", ["a"])["record_ids"]


def test_http_status_mapping_is_typed(overload_server):
    _, client = overload_server
    with pytest.raises(ServiceHTTPError) as missing:
        client.query("ghost", "subset", ["a"])
    assert missing.value.status == 404
    with pytest.raises(ServiceHTTPError) as invalid:
        client.query("web", "subset", [])
    assert invalid.value.status == 400
    assert not isinstance(invalid.value, (ServiceOverloadedError, ServiceTimeoutError))


def test_batch_carries_deadline_defaults_and_overrides():
    with ServiceServer(max_workers=2, cache_capacity=32) as server:
        client = ServiceClient(port=server.port, max_retries=0)
        client.create_index("web", transactions=TRANSACTIONS)
        results = client.batch(
            [{"type": "subset", "items": ["a"]}, {"type": "subset", "items": ["b"]}],
            index="web",
            deadline_ms=60_000,
        )
        assert len(results) == 2
        with pytest.raises(ServiceTimeoutError):
            client.batch(
                [{"type": "subset", "items": ["c"], "deadline_ms": 0.001}],
                index="web",
                deadline_ms=60_000,
            )


class TestClientRetry:
    def _client(self, **kwargs) -> ServiceClient:
        return ServiceClient(port=1, **kwargs)

    def test_backoff_honors_retry_after_and_caps_attempts(self, monkeypatch):
        client = self._client(max_retries=2, backoff_base=0.01, backoff_cap=1.0)
        calls = []
        sleeps = []

        def shed(method, path, payload, **kwargs):
            calls.append(path)
            raise ServiceOverloadedError("shed", status=429, retry_after=0.4)

        monkeypatch.setattr(client, "_request_once", shed)
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        with pytest.raises(ServiceOverloadedError):
            client._request("POST", "/query", {"index": "web"})
        assert len(calls) == 3  # initial + max_retries
        assert len(sleeps) == 2
        for slept in sleeps:
            # Retry-After (0.4s) beats the tiny exponential base; jitter only
            # shrinks the wait, never below half the hint, never past the cap.
            assert 0.2 <= slept <= 1.0

    def test_retry_succeeds_after_transient_shed(self, monkeypatch):
        client = self._client(max_retries=2, backoff_base=0.001, backoff_cap=0.002)
        attempts = []

        def flaky(method, path, payload, **kwargs):
            attempts.append(path)
            if len(attempts) == 1:
                raise ServiceOverloadedError("shed", status=429, retry_after=0.001)
            return {"ok": True}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client._request("POST", "/query", {}) == {"ok": True}
        assert len(attempts) == 2

    def test_non_idempotent_requests_never_retry_on_shed(self, monkeypatch):
        client = self._client(max_retries=5)
        attempts = []

        def shed(method, path, payload, **kwargs):
            attempts.append(path)
            raise ServiceOverloadedError("shed", status=429, retry_after=0.001)

        monkeypatch.setattr(client, "_request_once", shed)
        with pytest.raises(ServiceOverloadedError):
            client._request("POST", "/update", {"index": "web"})
        assert len(attempts) == 1

    def test_update_is_not_resent_on_a_stale_connection(self):
        client = self._client()

        class StaleConnection:
            timeout = 30.0
            sock = None
            calls = 0

            def request(self, *args, **kwargs):
                StaleConnection.calls += 1
                raise OSError("connection reset by peer")

            def close(self):
                pass

        client._local.connection = StaleConnection()
        with pytest.raises(ServiceError, match="NOT retried"):
            client.insert("web", [{"a"}])
        assert StaleConnection.calls == 1

    def test_idempotent_read_is_retried_on_a_stale_connection(self):
        client = self._client()

        class StaleConnection:
            timeout = 30.0
            sock = None
            calls = 0

            def request(self, *args, **kwargs):
                StaleConnection.calls += 1
                raise OSError("connection reset by peer")

            def close(self):
                pass

        client._local.connection = StaleConnection()
        # The retry opens a fresh connection to a dead port and fails there —
        # proof the read was re-sent rather than failed fast.
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
        assert StaleConnection.calls == 1
