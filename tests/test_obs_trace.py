"""Trace-span semantics: nesting, stage self-time, sampling, pool propagation.

The critical invariants are (a) spans parent correctly even when child work
runs on a shared thread pool (contextvar propagation through ``wrap``), and
(b) per-stage self-times never double-count, so a span's stage totals sum to
at most its duration.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_enabled():
    """Each test starts traced and leaves the module disabled (the default)."""
    trace.configure(enabled=True)
    yield
    trace.disable()


def stage_totals(tree: dict) -> float:
    return sum(stage["total_ms"] for stage in tree.get("stages", {}).values())


class TestRoots:
    def test_begin_finish_round_trip(self):
        root = trace.begin("query", index="web")
        time.sleep(0.001)
        tree = trace.finish(root)
        assert tree["name"] == "query"
        assert tree["meta"] == {"index": "web"}
        assert tree["duration_ms"] > 0
        assert not trace.is_active()

    def test_disabled_is_a_no_op(self):
        trace.disable()
        assert trace.begin("query") is None
        assert trace.finish(None) is None
        assert trace.stage_begin() is None
        with trace.span("child") as child:
            assert child is None

    def test_discard_restores_context(self):
        root = trace.begin("query")
        assert trace.is_active()
        trace.discard(root)
        assert not trace.is_active()

    def test_sampling_traces_every_nth_root(self):
        trace.configure(enabled=True, sample_every=3)
        roots = [trace.begin("query") for _ in range(9)]
        traced = [root for root in roots if root is not None]
        assert len(traced) == 3
        # Roots nest in this thread's context, so unwind innermost-first.
        for root in reversed(traced):
            trace.finish(root)
        assert not trace.is_active()

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            trace.configure(sample_every=0)


class TestNesting:
    def test_span_without_root_is_a_no_op(self):
        with trace.span("plan") as child:
            assert child is None

    def test_children_nest_under_the_open_span(self):
        root = trace.begin("query")
        with trace.span("execute"):
            with trace.span("plan"):
                pass
            with trace.span("fetch", index="web"):
                pass
        tree = trace.finish(root)
        (execute,) = tree["children"]
        assert execute["name"] == "execute"
        assert [child["name"] for child in execute["children"]] == ["plan", "fetch"]

    def test_child_durations_sum_to_at_most_parent(self):
        root = trace.begin("query")
        with trace.span("a"):
            time.sleep(0.002)
        with trace.span("b"):
            time.sleep(0.002)
        tree = trace.finish(root)
        child_sum = sum(child["duration_ms"] for child in tree["children"])
        assert child_sum <= tree["duration_ms"] + 1e-6


class TestStages:
    def test_stage_accumulates_count_and_time(self):
        root = trace.begin("query")
        for _ in range(3):
            token = trace.stage_begin()
            trace.stage_end("decode", token)
        tree = trace.finish(root)
        assert tree["stages"]["decode"]["count"] == 3
        assert tree["stages"]["decode"]["total_ms"] >= 0

    def test_nested_stages_report_self_time_only(self):
        root = trace.begin("query")
        outer = trace.stage_begin()
        time.sleep(0.002)
        inner = trace.stage_begin()
        time.sleep(0.004)
        trace.stage_end("inner", inner)
        trace.stage_end("outer", outer)
        tree = trace.finish(root)
        inner_ms = tree["stages"]["inner"]["total_ms"]
        outer_ms = tree["stages"]["outer"]["total_ms"]
        assert inner_ms >= 4.0 * 0.5  # generous slack for coarse clocks
        # Outer self time excludes the inner stage entirely.
        assert outer_ms < inner_ms
        assert stage_totals(tree) <= tree["duration_ms"] + 1e-6

    def test_stages_attach_to_the_innermost_span(self):
        root = trace.begin("query")
        with trace.span("shard"):
            token = trace.stage_begin()
            trace.stage_end("block_scan", token)
        tree = trace.finish(root)
        assert "stages" not in tree
        assert tree["children"][0]["stages"]["block_scan"]["count"] == 1


class TestPoolPropagation:
    def test_wrap_parents_worker_spans_under_the_submitting_query(self):
        def work(position: int) -> None:
            with trace.span("shard", shard=position):
                token = trace.stage_begin()
                trace.stage_end("decode", token)

        root = trace.begin("query")
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [trace.wrap(work) for _ in range(6)]
            list(pool.map(lambda pair: pair[0](pair[1]), zip(futures, range(6))))
        tree = trace.finish(root)
        shards = sorted(child["meta"]["shard"] for child in tree["children"])
        assert shards == list(range(6))
        for child in tree["children"]:
            assert child["stages"]["decode"]["count"] == 1

    def test_wrap_is_identity_outside_a_trace(self):
        def work():
            return 42

        assert trace.wrap(work) is work

    def test_concurrent_queries_keep_their_spans_apart(self):
        """N threads each run a root with children; no cross-contamination."""
        errors: list[str] = []
        barrier = threading.Barrier(8)

        def one_query(me: int) -> None:
            barrier.wait()
            root = trace.begin("query", worker=me)
            for step in range(5):
                with trace.span("child", worker=me, step=step):
                    token = trace.stage_begin()
                    trace.stage_end("stage", token)
            tree = trace.finish(root)
            if tree["meta"]["worker"] != me:
                errors.append(f"root meta stolen: {tree['meta']}")
            if len(tree["children"]) != 5:
                errors.append(f"worker {me} got {len(tree['children'])} children")
            for child in tree["children"]:
                if child["meta"]["worker"] != me:
                    errors.append(f"foreign child in worker {me}: {child['meta']}")
            child_sum = sum(child["duration_ms"] for child in tree["children"])
            if child_sum > tree["duration_ms"] + 1e-6:
                errors.append(f"worker {me}: children sum past the root")

        threads = [threading.Thread(target=one_query, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestRendering:
    def test_format_tree_renders_all_nodes_and_stages(self):
        root = trace.begin("query", index="web")
        with trace.span("execute"):
            token = trace.stage_begin()
            trace.stage_end("intersect", token)
        text = trace.format_tree(trace.finish(root))
        assert "query [index=web]" in text
        assert "\n  execute" in text
        assert "· intersect" in text and "x1" in text

    def test_format_tree_handles_missing_trace(self):
        assert trace.format_tree(None) == "(no trace recorded)"
