"""Integration tests for the figure/table reproductions (tiny scales).

These tests run every experiment function end to end on very small inputs.
They assert structure (rows, columns, per-sweep coverage) and the headline
qualitative claims of the paper that are stable even at tiny scale (the OIF
never loses to the IF by a large margin, equality is the OIF's cheapest
predicate, and so on); the benchmarks regenerate the full-size tables.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.figures import SyntheticScale
from repro.experiments.report import ResultTable, summarize_ratio

TINY_SCALE = SyntheticScale(base_records=1500, queries_per_size=2, default_query_size=3)


@pytest.fixture(autouse=True, scope="module")
def _quiet_cache():
    # The experiments share a process-wide cache of datasets and indexes; keep
    # it bounded for the test run.
    yield
    from repro.experiments import cache

    cache.clear()


class TestFigure7:
    @pytest.fixture(scope="class")
    def table(self):
        return figures.figure7(
            "msweb", sizes=(2, 3, 4), queries_per_size=2, num_sessions=1200, replicas=2
        )

    def test_rows_cover_all_predicates_and_sizes(self, table):
        assert isinstance(table, ResultTable)
        pairs = {(row["query_type"], row["qs"]) for row in table.rows}
        assert pairs == {
            (query_type, size)
            for query_type in ("subset", "equality", "superset")
            for size in (2, 3, 4)
        }

    def test_both_indexes_reported(self, table):
        for row in table.rows:
            assert "IF_pages" in row and "OIF_pages" in row

    def test_answers_are_identical_across_indexes(self, table):
        for row in table.rows:
            assert row["IF_answers"] == row["OIF_answers"]

    def test_oif_does_not_lose_on_average(self, table):
        assert summarize_ratio(table, "IF_pages", "OIF_pages") >= 1.0

    def test_msnbc_variant_runs(self):
        table = figures.figure7("msnbc", sizes=(2, 3), queries_per_size=2, num_sessions=3000)
        assert len(table.rows) == 6

    def test_unknown_dataset_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            figures.figure7("imaginary")


class TestSyntheticFigures:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figures.figure8(TINY_SCALE)

    def test_all_four_sweeps_present(self, fig8):
        assert set(fig8) == {"domain", "database", "query_size", "zipf"}

    def test_domain_sweep_covers_paper_values(self, fig8):
        assert fig8["domain"].column("domain_size") == [500, 2000, 8000]

    def test_database_sweep_keeps_paper_ratios(self, fig8):
        records = fig8["database"].column("num_records")
        assert len(records) == 4
        assert records[1] == 5 * records[0]
        assert records[2] == 10 * records[0]
        assert records[3] == 50 * records[0]

    def test_zipf_sweep_values(self, fig8):
        assert fig8["zipf"].column("zipf") == [0.0, 0.4, 0.8, 1.0]

    def test_metrics_present_for_both_indexes(self, fig8):
        for table in fig8.values():
            for row in table.rows:
                for name in ("IF", "OIF"):
                    assert f"{name}_pages" in row
                    assert f"{name}_io_ms" in row
                    assert f"{name}_cpu_ms" in row

    def test_figure9_equality_is_cheap_for_oif(self):
        fig9 = figures.figure9(TINY_SCALE)
        table = fig9["database"]
        assert summarize_ratio(table, "IF_pages", "OIF_pages") >= 1.0

    def test_figure10_superset_runs(self):
        fig10 = figures.figure10(TINY_SCALE)
        assert set(fig10) == {"domain", "database", "query_size", "zipf"}


class TestOtherExperiments:
    def test_space_overhead_rows(self):
        table = figures.space_overhead(num_records=1500, domain_size=300)
        indexes = {row["index"] for row in table.rows}
        assert indexes == {"IF", "OIF"}
        for row in table.rows:
            assert row["fraction_of_data"] > 0

    def test_space_overhead_oif_larger_than_if(self):
        table = figures.space_overhead(num_records=1500, domain_size=300)
        by_index = {row["index"]: row for row in table.rows}
        assert by_index["OIF"]["index_bytes"] >= by_index["IF"]["posting_bytes"]
        # The metadata removes one posting per record.
        assert by_index["OIF"]["postings_stored"] < by_index["IF"]["postings_stored"]

    def test_ordering_ablation_reports_three_indexes(self):
        table = figures.ordering_ablation(
            num_records=1500, domain_size=300, sizes=(2, 3), queries_per_size=2
        )
        for row in table.rows:
            assert {"IF_pages", "UBT_pages", "OIF_pages"} <= set(row)

    def test_update_tradeoff_shape(self):
        table = figures.update_tradeoff(
            num_records=3000, domain_size=300, update_fractions=(0.2,), queries_per_size=2
        )
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row["OIF_seconds"] > 0 and row["IF_seconds"] > 0
        assert row["OIF_over_IF"] > 0
        # Deterministic merge cost: both paths must charge buffer-pool pages.
        # (The paper's "OIF updates are 3-5x slower" claim is about wall
        # clock, which is too noisy to assert at this tiny scale — the
        # benchmark tier checks the page-count trend instead.)
        assert row["IF_pages"] > 0 and row["OIF_pages"] > 0

    def test_performance_summary_has_average_row(self):
        table = figures.performance_summary(
            num_records=1500, domain_size=300, queries_per_size=2
        )
        assert table.rows[-1]["query_type"] == "average"
        assert len(table.rows) == 4

    def test_skew_robustness_covers_grid(self):
        table = figures.skew_robustness(
            num_records=1500, domain_size=300, queries_per_size=2
        )
        assert len(table.rows) == 3 * 4
        for row in table.rows:
            assert row["IF_over_OIF"] > 0
