"""Multiprocess shard backend: equivalence, accounting and fault recovery.

The process backend must be observationally identical to threaded fan-out —
same result ids, same per-shard page counts (the paper's cost metric) and the
same ``sum(contexts) == totals`` accounting invariant — while its workers run
in separate interpreters.  Hypothesis drives random datasets and expression
shapes through both backends on twin indexes; dedicated tests cover the
``limit`` early-stop pushdown, pending-delta evaluation through the
updatable wrapper, the shared-memory result path and worker-crash recovery
(kill -9 mid-pool: the in-flight query fails loudly, the pool respawns, the
next query answers correctly).
"""

from __future__ import annotations

import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Dataset
from repro.core.query import And, Equality, Limit, Not, Or, Subset, Superset
from repro.core.shard import ShardProcessPool, ShardedIndex
from repro.core.updates import UpdatableShardedOIF
from repro.errors import QueryError

ITEMS = list("abcdefgh")

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    min_size=1,
    max_size=25,
)

items_strategy = st.sets(st.sampled_from(ITEMS + ["zz"]), min_size=1, max_size=3).map(
    frozenset
)

leaf_strategy = st.one_of(
    st.builds(Subset, items_strategy),
    st.builds(Equality, items_strategy),
    st.builds(Superset, items_strategy),
)

expr_strategy = st.recursive(
    leaf_strategy,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        st.builds(Not, children),
    ),
    max_leaves=4,
)

limit_strategy = st.one_of(
    st.none(),
    st.tuples(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=4)),
)

# Worker spawn dominates each example (two fresh interpreters), so the
# example budget is deliberately small; the expression/limit space inside
# each example is what varies cheaply.
relaxed = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _twins(transactions, num_shards=3):
    """Identical threaded and process-backed indexes over one dataset."""
    dataset = Dataset.from_transactions(transactions)
    threaded = ShardedIndex(dataset, num_shards, catalog_pages=True)
    procs = ShardedIndex(dataset, num_shards, catalog_pages=True)
    pool = ShardProcessPool(procs, 2)
    procs.attach_process_pool(pool)
    return threaded, procs, pool


def _drop_all(threaded, procs, pool):
    """Cold caches on both sides so page counts are comparable bit for bit."""
    threaded.drop_cache()
    procs.drop_cache()
    pool.drop_caches()


@relaxed
@given(
    transactions=transactions_strategy,
    exprs=st.lists(expr_strategy, min_size=1, max_size=4),
    limit=limit_strategy,
)
def test_process_backend_matches_threaded(transactions, exprs, limit):
    threaded, procs, pool = _twins(transactions)
    try:
        for expr in exprs:
            if limit is not None:
                count, offset = limit
                expr = Limit(expr, count=count, offset=offset)

            # fanout_evaluate: ids, per-shard page counts and kinds identical.
            _drop_all(threaded, procs, pool)
            t_ids, t_stats = threaded.fanout_evaluate(expr)
            before = procs.io_snapshot()
            p_ids, p_stats = procs.fanout_evaluate(expr)
            assert list(p_ids) == list(t_ids)
            assert [
                (s.shard, s.matches, s.page_accesses, s.random_reads, s.sequential_reads)
                for s in p_stats
            ] == [
                (s.shard, s.matches, s.page_accesses, s.random_reads, s.sequential_reads)
                for s in t_stats
            ]
            # The workers' I/O lands in the parent's totals: the paper's
            # page-access accounting survives the process boundary exactly.
            delta = procs.io_snapshot() - before
            assert delta.page_reads == sum(s.page_accesses for s in p_stats)

            # Streaming execute: the merged production-order stream (and the
            # limit early-stop prefix) is byte-identical too.
            _drop_all(threaded, procs, pool)
            assert list(procs.execute(expr)) == list(threaded.execute(expr))
    finally:
        pool.close()


@relaxed
@given(
    transactions=transactions_strategy,
    inserts=st.lists(
        st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4), min_size=1, max_size=5
    ),
    expr=expr_strategy,
)
def test_pending_delta_matches_threaded(transactions, inserts, expr):
    dataset = Dataset.from_transactions(transactions)
    twin = UpdatableShardedOIF(dataset, 3, catalog_pages=True)
    up = UpdatableShardedOIF(dataset, 3, catalog_pages=True)
    pool = ShardProcessPool(up.index, 2)
    up.attach_process_pool(pool)
    try:
        assert up.insert(inserts) == twin.insert(inserts)
        doomed = twin.evaluate(Subset(frozenset(list(transactions[0])[:1])))[:1]
        if doomed:
            up.delete(doomed)
            twin.delete(doomed)

        # Pending deltas and tombstones merge in the parent; workers only
        # ever see base shards.
        r_t, _ = twin.evaluate_detail(expr)
        r_p, _ = up.evaluate_detail(expr)
        assert r_p == r_t
        limited = Limit(expr, count=3, offset=1)
        assert up.evaluate(limited) == twin.evaluate(limited)

        # A flush rebuilds the affected shards and re-images them into the
        # pool; answers keep matching afterwards.
        twin.flush()
        up.flush()
        r_t2, _ = twin.evaluate_detail(expr)
        r_p2, _ = up.evaluate_detail(expr)
        assert r_p2 == r_t2
    finally:
        pool.close()


def _build_pool(num_shards=4, num_workers=2, **pool_kwargs):
    transactions = [
        {ITEMS[i % len(ITEMS)], ITEMS[(i * 3 + 1) % len(ITEMS)]} for i in range(64)
    ]
    dataset = Dataset.from_transactions(transactions)
    index = ShardedIndex(dataset, num_shards, catalog_pages=True)
    pool = ShardProcessPool(index, num_workers, **pool_kwargs)
    index.attach_process_pool(pool)
    return index, pool


def test_shared_memory_result_path():
    # threshold=1 forces every non-empty result column through shm; the ids
    # must come back unchanged and the segment must be unlinked (no resource
    # tracker leak warnings on interpreter exit).
    index, pool = _build_pool(shm_threshold=1)
    try:
        expr = Subset(frozenset({ITEMS[0]}))
        via_shm, _ = index.fanout_evaluate(expr)
        index.detach_process_pool()
        inline, _ = index.fanout_evaluate(expr)
        assert list(via_shm) == list(inline)
    finally:
        pool.close()


def test_killed_worker_fails_query_and_pool_recovers():
    index, pool = _build_pool()
    try:
        expr = Subset(frozenset({ITEMS[1]}))
        expected, _ = index.fanout_evaluate(expr)
        pids = pool.worker_pids()
        os.kill(pids[0], signal.SIGKILL)
        deadline = time.monotonic() + 30
        with pytest.raises(QueryError, match="died mid-query|unavailable"):
            # The kill may need a beat to reach the executor; the query must
            # fail with a clear error either way — never hang.
            while time.monotonic() < deadline:
                index.fanout_evaluate(expr)
        # Recovery: the slot was respawned over the same images and the next
        # query answers exactly as before the crash.
        again, _ = index.fanout_evaluate(expr)
        assert list(again) == list(expected)
        fresh_pids = pool.worker_pids()
        assert fresh_pids[0] != pids[0]
        assert len(fresh_pids) == len(pids)
    finally:
        pool.close()


def test_worker_respawn_preserves_refreshed_shards():
    dataset = Dataset.from_transactions([{ITEMS[i % 4]} for i in range(32)])
    up = UpdatableShardedOIF(dataset, 4, catalog_pages=True)
    pool = ShardProcessPool(up.index, 2)
    up.attach_process_pool(pool)
    try:
        up.insert([{ITEMS[0], ITEMS[5]}])
        up.flush()  # re-images the rebuilt shard(s)
        expr = Subset(frozenset({ITEMS[0]}))
        expected, _ = up.evaluate_detail(expr)
        pids = pool.worker_pids()
        os.kill(pids[1], signal.SIGKILL)
        with pytest.raises(QueryError):
            up.evaluate_detail(expr)
        # The respawned worker reopened the *refreshed* images, not stale ones.
        after, _ = up.evaluate_detail(expr)
        assert after == expected
    finally:
        pool.close()


def test_process_backend_requires_catalog_envs():
    dataset = Dataset.from_transactions([{"a", "b"}, {"b", "c"}])
    index = ShardedIndex(dataset, 2)  # plain in-memory envs, no page catalog
    with pytest.raises(QueryError, match="catalog"):
        ShardProcessPool(index, 1)


def test_process_backend_requires_index_options():
    dataset = Dataset.from_transactions([{"a", "b"}, {"b", "c"}])
    from repro.core import OrderedInvertedFile

    index = ShardedIndex(
        dataset, 2, factory=lambda ds: OrderedInvertedFile(ds, catalog_pages=True)
    )
    with pytest.raises(QueryError, match="options"):
        ShardProcessPool(index, 1)
    # An explicit options= unblocks the custom-factory case.
    pool = ShardProcessPool(index, 1, options={"catalog_pages": True})
    index.attach_process_pool(pool)
    try:
        mono = OrderedInvertedFile(dataset)
        expr = Subset(frozenset({"b"}))
        ids, _ = index.fanout_evaluate(expr)
        assert list(ids) == mono.evaluate(expr)
    finally:
        pool.close()
