"""Unit tests for the record reordering (Figure 3) and its invariants."""

from __future__ import annotations

import pytest

from repro.core.ordering import order_dataset
from repro.core.records import Dataset, Record
from repro.core.sequence import sequence_form
from repro.errors import IndexBuildError


class TestOrderDataset:
    def test_internal_ids_follow_lexicographic_order(self, paper_dataset):
        ordered = order_dataset(paper_dataset)
        forms = ordered.sequence_forms
        assert forms == sorted(forms)
        assert ordered.num_records == len(paper_dataset)

    def test_paper_figure3_first_and_last_records(self, paper_dataset):
        # In Figure 3 the record {a} gets id 1 and the records whose smallest
        # item is d come last (ids 17-18).  The relative order of {d, h} and
        # {d, i} depends on the tie-break between the equally frequent items h
        # and i, so only the smallest item of the tail records is asserted.
        ordered = order_dataset(paper_dataset)
        order = ordered.order
        first_items = {order.item_at(rank) for rank in ordered.sequence_form_of(1)}
        assert first_items == {"a"}
        for internal_id in (17, 18):
            form = ordered.sequence_form_of(internal_id)
            assert order.item_at(form[0]) == "d"
        tail_sets = {
            frozenset(order.item_at(rank) for rank in ordered.sequence_form_of(internal_id))
            for internal_id in (17, 18)
        }
        assert tail_sets == {frozenset({"d", "h"}), frozenset({"d", "i"})}

    def test_id_maps_are_inverse_bijections(self, skewed_dataset):
        ordered = order_dataset(skewed_dataset)
        for internal_id in range(1, ordered.num_records + 1):
            assert ordered.internal_id(ordered.original_id(internal_id)) == internal_id
        assert sorted(ordered.new_to_old) == sorted(skewed_dataset.record_ids)

    def test_lengths_match_source_records(self, skewed_dataset):
        ordered = order_dataset(skewed_dataset)
        for internal_id in range(1, ordered.num_records + 1):
            assert ordered.length_of(internal_id) == ordered.record(internal_id).length

    def test_sequence_forms_match_source_records(self, skewed_dataset):
        ordered = order_dataset(skewed_dataset)
        for internal_id in (1, ordered.num_records // 2, ordered.num_records):
            record = ordered.record(internal_id)
            assert ordered.sequence_form_of(internal_id) == sequence_form(
                record.items, ordered.order
            )

    def test_custom_item_order_is_respected(self, paper_dataset):
        reversed_order = paper_dataset.vocabulary.frequency_order()
        custom = list(reversed_order.items_in_order())[::-1]
        from repro.core.items import ItemOrder

        ordered = order_dataset(paper_dataset, ItemOrder(custom))
        assert ordered.order.item_at(0) == custom[0]

    def test_unknown_ids_rejected(self, paper_dataset):
        ordered = order_dataset(paper_dataset)
        with pytest.raises(IndexBuildError):
            ordered.original_id(0)
        with pytest.raises(IndexBuildError):
            ordered.original_id(len(paper_dataset) + 1)
        with pytest.raises(IndexBuildError):
            ordered.internal_id(99999)

    def test_empty_set_values_rejected(self):
        dataset = Dataset([Record(1, frozenset({"a"})), Record(2, frozenset())])
        with pytest.raises(IndexBuildError):
            order_dataset(dataset)

    def test_duplicate_set_values_get_consecutive_ids(self):
        dataset = Dataset.from_transactions([{"a", "b"}, {"c"}, {"a", "b"}])
        ordered = order_dataset(dataset)
        duplicate_internal = sorted(
            ordered.internal_id(record.record_id)
            for record in dataset
            if record.items == frozenset({"a", "b"})
        )
        assert duplicate_internal[1] == duplicate_internal[0] + 1


class TestMetadataConstruction:
    def test_regions_partition_the_id_space(self, skewed_dataset):
        ordered = order_dataset(skewed_dataset)
        ordered.metadata.validate_partition(ordered.num_records)

    def test_paper_example_metadata_regions(self, paper_dataset):
        # Figure 5: records 1-12 have smallest item a, 13-14 b, 15-16 c, 17-18 d.
        ordered = order_dataset(paper_dataset)
        order = ordered.order
        expectations = {"a": (1, 12), "b": (13, 14), "c": (15, 16), "d": (17, 18)}
        for item, (lower, upper) in expectations.items():
            region = ordered.metadata.region_for(order.rank_of(item))
            assert region is not None
            assert (region.lower, region.upper) == (lower, upper)

    def test_singleton_boundary(self, paper_dataset):
        # Record {a} is the only single-item record; it has internal id 1.
        ordered = order_dataset(paper_dataset)
        region = ordered.metadata.region_for(0)
        assert region is not None
        assert region.singleton_upper == 1
        assert list(region.singleton_ids) == [1]

    def test_region_of_absent_smallest_item_is_none(self, paper_dataset):
        ordered = order_dataset(paper_dataset)
        order = ordered.order
        # No record has j (the rarest item) as its smallest item.
        assert ordered.metadata.region_for(order.rank_of("j")) is None

    def test_every_record_is_in_its_smallest_items_region(self, skewed_dataset):
        ordered = order_dataset(skewed_dataset)
        for internal_id in range(1, ordered.num_records + 1):
            smallest = ordered.sequence_form_of(internal_id)[0]
            assert ordered.metadata.contains(smallest, internal_id)
