"""Unit tests for the sequential record store."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError, KeyNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import MemoryPageFile
from repro.storage.recordstore import RecordStore
from repro.storage.stats import IOStatistics


def make_store(page_size=256, capacity=4):
    stats = IOStatistics()
    pool = BufferPool(MemoryPageFile(page_size=page_size), capacity=capacity, stats=stats)
    return RecordStore(pool), stats


class TestRecordStore:
    def test_append_and_fetch(self):
        store, _ = make_store()
        store.append(1, [0, 3, 7])
        store.append(2, [5])
        assert store.fetch(1) == [0, 3, 7]
        assert store.fetch(2) == [5]

    def test_duplicate_id_rejected(self):
        store, _ = make_store()
        store.append(1, [0])
        with pytest.raises(DatasetError):
            store.append(1, [1])

    def test_missing_record_raises(self):
        store, _ = make_store()
        with pytest.raises(KeyNotFoundError):
            store.fetch(99)

    def test_record_too_large_for_page_rejected(self):
        store, _ = make_store(page_size=64)
        with pytest.raises(DatasetError):
            store.append(1, list(range(1000)))

    def test_many_records_span_pages(self):
        store, _ = make_store(page_size=128)
        for record_id in range(1, 101):
            store.append(record_id, [record_id % 7, record_id % 11 + 20])
        assert len(store) == 100
        assert store.pool.page_file.num_pages > 1
        for record_id in (1, 50, 100):
            assert store.fetch(record_id) == [record_id % 7, record_id % 11 + 20]

    def test_build_helper(self):
        store, _ = make_store()
        store.build((i, [i, i + 1]) for i in range(1, 6))
        assert len(store) == 5
        assert 3 in store
        assert 99 not in store

    def test_fetch_costs_one_page_when_cold(self):
        store, stats = make_store(page_size=128, capacity=2)
        for record_id in range(1, 41):
            store.append(record_id, [record_id, record_id * 2])
        store.pool.clear()
        stats.reset()
        store.fetch(40)
        assert stats.page_reads == 1

    def test_empty_item_list_round_trips(self):
        store, _ = make_store()
        store.append(7, [])
        assert store.fetch(7) == []
