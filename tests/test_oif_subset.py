"""Tests for subset query evaluation on the OIF (Algorithm 1)."""

from __future__ import annotations

import itertools

from repro.core import OrderedInvertedFile
from tests.conftest import sample_queries


class TestPaperExamples:
    def test_subset_a_d_returns_101_104_114(self, paper_oif):
        # Section 2's running example: qs = {a, d} -> {101, 104, 114}.
        assert paper_oif.subset_query({"a", "d"}) == [101, 104, 114]

    def test_subset_b_c(self, paper_oif, paper_oracle):
        assert paper_oif.subset_query({"b", "c"}) == paper_oracle.subset_query({"b", "c"})

    def test_single_item_queries(self, paper_oif, paper_oracle):
        for item in "abcdefghij":
            assert paper_oif.subset_query({item}) == paper_oracle.subset_query({item})

    def test_all_pairs_match_oracle(self, paper_oif, paper_oracle):
        for pair in itertools.combinations("abcdefghij", 2):
            assert paper_oif.subset_query(set(pair)) == paper_oracle.subset_query(set(pair)), pair

    def test_whole_vocabulary_query(self, paper_oif):
        assert paper_oif.subset_query(set("abcdefghij")) == []

    def test_unknown_item_yields_empty(self, paper_oif):
        assert paper_oif.subset_query({"a", "unknown"}) == []

    def test_query_result_is_sorted_original_ids(self, paper_oif):
        result = paper_oif.subset_query({"a", "b"})
        assert result == sorted(result)
        assert all(101 <= record_id <= 118 for record_id in result)


class TestAgainstOracle:
    def test_random_queries_match_oracle(self, skewed_oif, skewed_oracle, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=60, max_size=4, seed=11):
            assert skewed_oif.subset_query(query) == skewed_oracle.subset_query(query), query

    def test_larger_dataset_multiblock_lists(self, larger_dataset):
        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        from repro.baselines import NaiveScanIndex

        oracle = NaiveScanIndex(larger_dataset)
        for query in sample_queries(larger_dataset, count=30, max_size=3, seed=5):
            assert oif.subset_query(query) == oracle.subset_query(query), query

    def test_queries_with_most_frequent_item(self, skewed_oif, skewed_oracle):
        # The most frequent item has an empty inverted list (metadata only),
        # which exercises lines 11-14 of Algorithm 1.
        top = skewed_oif.order.item_at(0)
        second = skewed_oif.order.item_at(1)
        rare = skewed_oif.order.item_at(skewed_oif.domain_size - 1)
        for query in ({top}, {top, second}, {top, rare}, {top, second, rare}):
            assert skewed_oif.subset_query(query) == skewed_oracle.subset_query(query), query

    def test_queries_of_only_rare_items(self, skewed_oif, skewed_oracle):
        rare_items = [
            skewed_oif.order.item_at(rank)
            for rank in range(skewed_oif.domain_size - 3, skewed_oif.domain_size)
        ]
        for size in (1, 2, 3):
            query = set(rare_items[:size])
            assert skewed_oif.subset_query(query) == skewed_oracle.subset_query(query)


class TestPruning:
    def test_subset_reads_fewer_pages_than_whole_lists(self, larger_dataset):
        oif = OrderedInvertedFile(larger_dataset, block_capacity=16)
        inverted_lists_pages = oif.env.page_file.num_pages
        # A selective query touching frequent items should not scan the index fully.
        frequent = [oif.order.item_at(1), oif.order.item_at(2), oif.order.item_at(3)]
        oif.drop_cache()
        before = oif.stats.snapshot()
        oif.subset_query(set(frequent))
        delta = oif.stats.since(before)
        assert 0 < delta.page_reads < inverted_lists_pages

    def test_candidate_range_narrowing_does_not_change_answers(self, skewed_dataset):
        narrowed = OrderedInvertedFile(skewed_dataset, narrow_candidate_range=True)
        plain = OrderedInvertedFile(skewed_dataset, narrow_candidate_range=False)
        for query in sample_queries(skewed_dataset, count=25, max_size=4, seed=3):
            assert narrowed.subset_query(query) == plain.subset_query(query)

    def test_narrowing_never_increases_page_accesses(self, larger_dataset):
        narrowed = OrderedInvertedFile(larger_dataset, block_capacity=16)
        plain = OrderedInvertedFile(
            larger_dataset, block_capacity=16, narrow_candidate_range=False
        )
        for query in sample_queries(larger_dataset, count=10, max_size=3, seed=9):
            narrowed.drop_cache()
            plain.drop_cache()
            before_narrowed = narrowed.stats.snapshot()
            narrowed.subset_query(query)
            narrowed_pages = narrowed.stats.since(before_narrowed).page_reads
            before_plain = plain.stats.snapshot()
            plain.subset_query(query)
            plain_pages = plain.stats.since(before_plain).page_reads
            assert narrowed_pages <= plain_pages


class TestEdgeCases:
    def test_duplicate_items_in_query_are_collapsed(self, paper_oif):
        assert paper_oif.subset_query(["a", "a", "d"]) == [101, 104, 114]

    def test_query_larger_than_any_record(self, skewed_oif):
        items = [skewed_oif.order.item_at(rank) for rank in range(10)]
        assert skewed_oif.subset_query(set(items)) == []

    def test_dataset_of_identical_records(self):
        from repro.core import Dataset

        dataset = Dataset.from_transactions([{"x", "y"}] * 25)
        oif = OrderedInvertedFile(dataset, block_capacity=4)
        assert oif.subset_query({"x"}) == list(range(1, 26))
        assert oif.subset_query({"x", "y"}) == list(range(1, 26))
        assert oif.subset_query({"y", "z"}) == []

    def test_single_record_dataset(self):
        from repro.core import Dataset

        dataset = Dataset.from_transactions([{"p", "q", "r"}])
        oif = OrderedInvertedFile(dataset)
        assert oif.subset_query({"p"}) == [1]
        assert oif.subset_query({"p", "r"}) == [1]
        assert oif.subset_query({"p", "z"}) == []


class TestSingleItemStreamOrder:
    """Regression: the single-item evaluation relies on the scan being sorted.

    ``_single_item_subset`` deliberately applies **no sort**: the block scan
    must yield strictly increasing internal ids (block tags order exactly
    like the ids they cover), and the metadata region — records whose
    *smallest* item is the queried one — must start after every id the list
    itself references.  These tests pin both invariants, item by item.
    """

    def test_internal_ids_ascend_without_sorting(self, skewed_oif):
        from repro.core.queries.subset import _single_item_subset

        checked = 0
        for rank in range(skewed_oif.domain_size):
            internal_ids = _single_item_subset(skewed_oif, rank)
            assert internal_ids == sorted(internal_ids), (
                f"single-item scan of rank {rank} yielded unsorted ids"
            )
            assert len(set(internal_ids)) == len(internal_ids)
            checked += len(internal_ids)
        assert checked  # the sweep exercised non-empty lists

    def test_list_ids_all_precede_the_metadata_region(self, skewed_oif):
        from repro.core.roi import subset_roi

        for rank in range(skewed_oif.domain_size):
            region = skewed_oif.metadata.region_for(rank)
            if region is None:
                continue
            roi = subset_roi((rank,), skewed_oif.domain_size)
            list_ids = [
                internal_id
                for _key, block in skewed_oif.scan_blocks(rank, roi)
                for internal_id in block.columns().ids
            ]
            if list_ids:
                assert max(list_ids) < region.lower

    def test_answers_match_oracle(self, skewed_oif, skewed_oracle):
        for rank in range(0, skewed_oif.domain_size, 7):
            item = skewed_oif.order.item_at(rank)
            assert skewed_oif.subset_query({item}) == skewed_oracle.subset_query({item})
