"""Unit tests for the Berkeley-DB-like Environment/Table facade."""

from __future__ import annotations

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.storage.kvstore import PAPER_CACHE_BYTES, Environment, Table


class TestEnvironment:
    def test_default_cache_matches_paper_setting(self):
        env = Environment()
        assert env.cache_pages == PAPER_CACHE_BYTES // env.page_size

    def test_cache_too_small_rejected(self):
        with pytest.raises(StorageError):
            Environment(page_size=4096, cache_bytes=1024)

    def test_create_and_lookup_table(self):
        env = Environment()
        table = env.create_table("t1")
        assert env.table("t1") is table

    def test_duplicate_table_rejected(self):
        env = Environment()
        env.create_table("t1")
        with pytest.raises(StorageError):
            env.create_table("t1")

    def test_unknown_table_rejected(self):
        env = Environment()
        with pytest.raises(StorageError):
            env.table("nope")

    def test_reset_stats(self):
        env = Environment()
        env.stats.record_physical_read(0)
        env.reset_stats()
        assert env.stats.page_reads == 0

    def test_size_bytes_tracks_allocations(self):
        env = Environment(page_size=1024)
        before = env.size_bytes
        env.create_table("t", access_method="btree")
        assert env.size_bytes > before

    def test_file_backed_environment(self, tmp_path):
        env = Environment(path=str(tmp_path / "env.db"), page_size=1024)
        table = env.create_table("t")
        table.put(b"k", b"v")
        env.close()
        assert (tmp_path / "env.db").exists()

    def test_drop_cache_forces_cold_reads(self):
        env = Environment(page_size=512, cache_bytes=4096)
        table = env.create_table("t")
        table.put(b"k", b"v" * 100)
        env.drop_cache()
        env.reset_stats()
        table.get(b"k")
        assert env.stats.page_reads > 0


class TestTable:
    def test_btree_table_operations(self):
        env = Environment()
        table = env.create_table("bt", access_method="btree")
        table.put(b"b", b"2")
        table.put(b"a", b"1")
        assert table.get(b"a") == b"1"
        assert table.contains(b"b")
        assert len(table) == 2
        assert [key for key, _ in table.cursor()] == [b"a", b"b"]
        table.delete(b"a")
        assert not table.contains(b"a")

    def test_hash_table_operations(self):
        env = Environment()
        table = env.create_table("ht", access_method="hash")
        table.put(b"x", b"payload")
        assert table.get(b"x") == b"payload"
        assert len(table) == 1
        with pytest.raises(KeyNotFoundError):
            table.get(b"y")

    def test_hash_table_rejects_cursor(self):
        env = Environment()
        table = env.create_table("ht", access_method="hash")
        with pytest.raises(StorageError):
            table.cursor()

    def test_hash_table_rejects_bulk_load(self):
        env = Environment()
        table = env.create_table("ht", access_method="hash")
        with pytest.raises(StorageError):
            table.bulk_load([])

    def test_btree_rejects_hashfile_accessor(self):
        env = Environment()
        table = env.create_table("bt", access_method="btree")
        with pytest.raises(StorageError):
            _ = table.hashfile

    def test_unknown_access_method(self):
        env = Environment()
        with pytest.raises(StorageError):
            Table(env, "bad", access_method="lsm")

    def test_bulk_load_and_cursor_range(self):
        env = Environment()
        table = env.create_table("bt")
        table.bulk_load((f"{i:04d}".encode(), b"v") for i in range(100))
        suffix = [key for key, _ in table.cursor(b"0097")]
        assert suffix == [b"0097", b"0098", b"0099"]

    def test_shared_stats_across_tables(self):
        env = Environment(page_size=512, cache_bytes=4096)
        one = env.create_table("one")
        two = env.create_table("two", access_method="hash")
        one.put(b"k", b"v")
        two.put(b"k", b"v")
        env.drop_cache()
        env.reset_stats()
        one.get(b"k")
        two.get(b"k")
        assert env.stats.page_reads >= 2
