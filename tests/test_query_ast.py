"""Unit tests for the query-expression AST: validation, normalization,
canonical keys and the JSON wire format."""

from __future__ import annotations

import pytest

from repro.core.interfaces import QueryType
from repro.core.query import (
    And,
    Equality,
    Limit,
    Not,
    Or,
    Subset,
    Superset,
    expr_from_dict,
    leaf_for,
)
from repro.errors import QueryError


class TestConstruction:
    def test_leaves_coerce_iterables_to_frozensets(self):
        assert Subset(["a", "b"]).items == frozenset({"a", "b"})
        assert Equality({"a"}).items == frozenset({"a"})

    def test_empty_query_sets_are_rejected(self):
        for leaf_type in (Subset, Equality, Superset):
            with pytest.raises(QueryError):
                leaf_type(frozenset())

    def test_combinators_need_expression_operands(self):
        with pytest.raises(QueryError):
            And(())
        with pytest.raises(QueryError):
            Or(("subset",))
        with pytest.raises(QueryError):
            Not("subset")

    def test_limit_validation(self):
        with pytest.raises(QueryError):
            Subset({"a"}).limit(-1)
        with pytest.raises(QueryError):
            Limit(Subset({"a"}), count=2, offset=-3)
        with pytest.raises(QueryError):
            Limit(Subset({"a"}), count="many")

    def test_limit_only_at_the_top(self):
        limited = Subset({"a"}).limit(5)
        with pytest.raises(QueryError):
            And((limited, Subset({"b"})))
        with pytest.raises(QueryError):
            Not(limited)

    def test_operator_sugar(self):
        expr = (Subset({"a"}) & Subset({"b"})) | ~Superset({"c"})
        assert isinstance(expr, Or)
        assert expr.matches(frozenset({"a", "b"}))

    def test_leaf_for_parses_wire_names(self):
        assert leaf_for("SUBSET", {"a"}) == Subset({"a"})
        with pytest.raises(QueryError):
            leaf_for("between", {"a"})


class TestMatches:
    RECORD = frozenset({"a", "b", "c"})

    def test_leaf_semantics(self):
        assert Subset({"a", "b"}).matches(self.RECORD)
        assert not Subset({"a", "z"}).matches(self.RECORD)
        assert Equality({"a", "b", "c"}).matches(self.RECORD)
        assert not Equality({"a", "b"}).matches(self.RECORD)
        assert Superset({"a", "b", "c", "d"}).matches(self.RECORD)
        assert not Superset({"a", "b"}).matches(self.RECORD)

    def test_boolean_semantics(self):
        expr = And((Subset({"a"}), Not(Superset({"a", "b"}))))
        assert expr.matches(self.RECORD)
        assert not expr.matches(frozenset({"a", "b"}))
        assert Or((Equality({"z"}), Subset({"c"}))).matches(self.RECORD)

    def test_limit_matches_delegates_to_inner_predicate(self):
        assert Subset({"a"}).limit(1).matches(self.RECORD)


class TestNormalization:
    def test_nested_ands_flatten(self):
        expr = And((And((Subset({"a"}), Subset({"b"}))), Subset({"c"})))
        normalized = expr.normalize()
        assert isinstance(normalized, And)
        assert len(normalized.operands) == 3

    def test_duplicate_operands_dedupe_and_singletons_collapse(self):
        expr = And((Subset({"a"}), Subset({"a"})))
        assert expr.normalize() == Subset({"a"})
        expr = Or((Subset({"b", "a"}), Subset({"a", "b"})))
        assert expr.normalize() == Subset({"a", "b"})

    def test_double_negation_eliminates(self):
        assert Not(Not(Subset({"a"}))).normalize() == Subset({"a"})

    def test_de_morgan_pushes_not_onto_leaves(self):
        normalized = Not(And((Subset({"a"}), Superset({"b"})))).normalize()
        assert normalized == Or((Not(Subset({"a"})), Not(Superset({"b"})))).normalize()
        # After normalization every Not sits directly on a leaf.
        def all_nots_on_leaves(expr):
            if isinstance(expr, Not):
                return not expr.operand.children()
            return all(all_nots_on_leaves(child) for child in expr.children())
        assert all_nots_on_leaves(normalized)

    def test_stacked_limits_compose(self):
        inner = Subset({"a"}).limit(10, offset=2)
        outer = Limit(inner, count=3, offset=4)
        normalized = outer.normalize()
        assert normalized == Limit(Subset({"a"}), count=3, offset=6)
        # An outer offset can exhaust the inner count entirely.
        drained = Limit(Subset({"a"}).limit(3), count=None, offset=5).normalize()
        assert drained == Limit(Subset({"a"}), count=0, offset=5)

    def test_noop_limit_drops_away(self):
        assert Limit(Subset({"a"}), count=None, offset=0).normalize() == Subset({"a"})

    def test_normalization_is_idempotent(self):
        expr = Not(And((Subset({"a"}), Or((Equality({"b"}), Not(Subset({"c"})))))))
        once = expr.normalize()
        assert once.normalize() == once


class TestCanonicalKey:
    def test_key_is_stable_across_construction_orders(self):
        left = And((Subset({"a", "b"}), Not(Superset({"c"}))))
        right = And((Not(Superset({"c"})), Subset({"b", "a"})))
        assert left.canonical_key() == right.canonical_key()
        assert left.normalize() == right.normalize()
        assert hash(left.normalize()) == hash(right.normalize())

    def test_key_distinguishes_predicates(self):
        keys = {
            Subset({"a"}).canonical_key(),
            Equality({"a"}).canonical_key(),
            Superset({"a"}).canonical_key(),
            Not(Subset({"a"})).canonical_key(),
            Subset({"a"}).limit(1).canonical_key(),
        }
        assert len(keys) == 5

    def test_key_renders_sorted_items(self):
        assert Subset({"b", "a"}).canonical_key() == ("subset", ("a", "b"))


class TestWireFormat:
    def test_round_trip(self):
        expr = And(
            (
                Subset({"a", "b"}),
                Not(Superset({"c"})),
                Or((Equality({"d"}), Subset({"e"}))),
            )
        ).limit(7, offset=1)
        parsed = expr_from_dict(expr.to_dict())
        assert parsed.normalize() == expr.normalize()

    def test_query_type_leaf_builder(self):
        assert QueryType.SUBSET.leaf({"a"}) == Subset({"a"})
        assert QueryType.parse("superset").leaf({"a"}) == Superset({"a"})

    def test_malformed_payloads_raise_query_error(self):
        for payload in (
            None,
            [],
            {},
            {"op": 7},
            {"op": "subset"},
            {"op": "subset", "items": []},
            {"op": "and", "args": []},
            {"op": "not"},
            {"op": "teleport", "items": ["a"]},
        ):
            with pytest.raises(QueryError):
                expr_from_dict(payload)


class TestQueryTypeParse:
    def test_non_string_inputs_raise_query_error(self):
        for bad in (None, 7, 3.5, ["subset"], {"subset"}):
            with pytest.raises(QueryError):
                QueryType.parse(bad)

    def test_unknown_string_raises_query_error(self):
        with pytest.raises(QueryError):
            QueryType.parse("between")
