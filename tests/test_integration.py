"""End-to-end integration tests spanning generators, indexes, workloads and updates."""

from __future__ import annotations

import pytest

try:
    import numpy as _np
except ImportError:
    _np = None

from repro.baselines import InvertedFile, NaiveScanIndex
from repro.core import OrderedInvertedFile
from repro.core.updates import UpdatableIF, UpdatableOIF
from repro.datasets import (
    MswebConfig,
    SyntheticConfig,
    generate_msweb,
    generate_synthetic,
    read_transactions,
    write_transactions,
)
from repro.experiments import ExperimentRunner, if_factory, oif_factory
from repro.workloads import WorkloadGenerator


class TestGenerateIndexQueryPipeline:
    def test_synthetic_pipeline(self, tmp_path):
        dataset = generate_synthetic(
            SyntheticConfig(num_records=1500, domain_size=200, zipf_order=0.9, seed=3)
        )
        path = tmp_path / "synthetic.txt"
        write_transactions(dataset, path)
        reloaded = read_transactions(path)
        assert len(reloaded) == len(dataset)

        oif = OrderedInvertedFile(reloaded)
        inverted = InvertedFile(reloaded)
        oracle = NaiveScanIndex(reloaded)
        generator = WorkloadGenerator(reloaded, seed=5)
        for query_type in ("subset", "equality", "superset"):
            workload = generator.workload(query_type, sizes=[2, 3], queries_per_size=3)
            for query in workload:
                expected = oracle.query(query_type, query.items)
                assert oif.query(query_type, query.items) == expected
                assert inverted.query(query_type, query.items) == expected
                assert expected, "the workload generator must produce non-empty answers"

    def test_msweb_pipeline_with_runner(self):
        dataset = generate_msweb(MswebConfig(num_sessions=1500, replicas=2, seed=5))
        generator = WorkloadGenerator(dataset, seed=9)
        workload = generator.workload("subset", sizes=[2, 3], queries_per_size=3)
        runner = ExperimentRunner()
        results = runner.compare(dataset, workload, (if_factory(), oif_factory()))
        if_cost = results["IF"].overall()
        oif_cost = results["OIF"].overall()
        # Identical answers and the OIF must not be more expensive on average.
        assert [r.cardinality for r in results["IF"].results] == [
            r.cardinality for r in results["OIF"].results
        ]
        assert oif_cost.mean_page_accesses <= if_cost.mean_page_accesses

    def test_query_then_update_then_query(self):
        dataset = generate_synthetic(
            SyntheticConfig(num_records=1000, domain_size=150, zipf_order=0.8, seed=11)
        )
        extra = generate_synthetic(
            SyntheticConfig(num_records=150, domain_size=150, zipf_order=0.8, seed=12)
        )
        for wrapper_class in (UpdatableOIF, UpdatableIF):
            wrapper = wrapper_class(dataset)
            wrapper.insert(set(record.items) for record in extra)
            wrapper.flush()
            oracle = NaiveScanIndex(wrapper.dataset)
            probe = next(iter(extra)).items
            assert wrapper.subset_query(probe) == oracle.subset_query(probe)
            assert wrapper.superset_query(probe) == oracle.superset_query(probe)


class TestScalingBehaviour:
    @pytest.mark.skipif(
        _np is None,
        reason="qualitative scaling claim is pinned to the reference "
        "numpy-generated workload stream; the pure-Python fallback stream "
        "draws a different (equally valid) sample",
    )
    def test_oif_advantage_grows_with_database_size(self):
        """The paper's central scaling claim, checked qualitatively.

        As |D| grows (with |I| fixed), the IF must fetch ever longer lists
        while the OIF's Range of Interest keeps the touched region roughly
        stable, so the IF/OIF page-access ratio must not shrink.
        """
        ratios = []
        for num_records in (1000, 4000):
            dataset = generate_synthetic(
                SyntheticConfig(num_records=num_records, domain_size=150, zipf_order=0.9, seed=21)
            )
            generator = WorkloadGenerator(dataset, seed=22)
            workload = generator.workload("subset", sizes=[3], queries_per_size=5)
            runner = ExperimentRunner()
            results = runner.compare(dataset, workload, (if_factory(), oif_factory()))
            if_pages = results["IF"].overall().mean_page_accesses
            oif_pages = max(results["OIF"].overall().mean_page_accesses, 0.1)
            ratios.append(if_pages / oif_pages)
        assert ratios[-1] >= ratios[0] * 0.9  # allow small-sample noise, forbid collapse

    def test_equality_cost_stays_flat_while_if_grows(self):
        costs = {}
        for num_records in (1000, 4000):
            dataset = generate_synthetic(
                SyntheticConfig(num_records=num_records, domain_size=150, zipf_order=0.9, seed=31)
            )
            generator = WorkloadGenerator(dataset, seed=32)
            workload = generator.workload("equality", sizes=[3], queries_per_size=5)
            runner = ExperimentRunner()
            results = runner.compare(dataset, workload, (if_factory(), oif_factory()))
            costs[num_records] = {
                name: run.overall().mean_page_accesses for name, run in results.items()
            }
        # The IF's equality cost grows with the data; the OIF's barely moves.
        assert costs[4000]["IF"] > costs[1000]["IF"]
        assert costs[4000]["OIF"] <= costs[1000]["OIF"] + 3
