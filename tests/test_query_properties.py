"""Property-based tests for the expression API.

Hypothesis builds random boolean expressions over random small datasets and
checks that every access method agrees with the brute-force per-record
semantics (the naive oracle), that normalization preserves meaning, and that
``limit``/``offset`` behave like a stream slice.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    InvertedFile,
    NaiveScanIndex,
    SignatureFile,
    UnorderedBTreeInvertedFile,
)
from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import And, Equality, Not, Or, Subset, Superset, expr_from_dict

ITEMS = list("abcdefgh")

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    min_size=1,
    max_size=25,
)

items_strategy = st.sets(st.sampled_from(ITEMS + ["zz"]), min_size=1, max_size=3).map(
    frozenset
)

leaf_strategy = st.one_of(
    st.builds(Subset, items_strategy),
    st.builds(Equality, items_strategy),
    st.builds(Superset, items_strategy),
)

expr_strategy = st.recursive(
    leaf_strategy,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        st.builds(Not, children),
    ),
    max_leaves=5,
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_all_indexes(dataset: Dataset):
    return [
        NaiveScanIndex(dataset),
        OrderedInvertedFile(dataset, block_capacity=3),
        OrderedInvertedFile(dataset, use_metadata=False, block_capacity=3),
        InvertedFile(dataset),
        UnorderedBTreeInvertedFile(dataset, block_capacity=3),
        SignatureFile(dataset, signature_bits=32, bits_per_item=3),
    ]


def brute_force(dataset: Dataset, expr) -> list[int]:
    return sorted(
        record.record_id for record in dataset if expr.matches(record.items)
    )


class TestExpressionsMatchBruteForce:
    @relaxed
    @given(transactions_strategy, st.lists(expr_strategy, min_size=1, max_size=4))
    def test_every_index_agrees_with_the_per_record_semantics(
        self, transactions, exprs
    ):
        dataset = Dataset.from_transactions(transactions)
        indexes = build_all_indexes(dataset)
        for expr in exprs:
            expected = brute_force(dataset, expr)
            for index in indexes:
                assert index.evaluate(expr) == expected, (index.name, expr)

    @relaxed
    @given(
        transactions_strategy,
        expr_strategy,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=4),
    )
    def test_limit_is_a_slice_of_the_full_answer(
        self, transactions, expr, count, offset
    ):
        dataset = Dataset.from_transactions(transactions)
        full = brute_force(dataset, expr)
        expected_size = max(0, min(count, len(full) - offset))
        for index in build_all_indexes(dataset):
            limited = index.evaluate(expr.limit(count, offset=offset))
            assert len(limited) == expected_size, (index.name, expr)
            assert set(limited) <= set(full), (index.name, expr)


class TestNormalizationProperties:
    @relaxed
    @given(transactions_strategy, expr_strategy)
    def test_normalization_preserves_semantics(self, transactions, expr):
        normalized = expr.normalize()
        for transaction in transactions:
            record = frozenset(transaction)
            assert expr.matches(record) == normalized.matches(record)

    @relaxed
    @given(expr_strategy)
    def test_normalization_is_idempotent_and_keys_are_stable(self, expr):
        once = expr.normalize()
        assert once.normalize() == once
        assert expr.canonical_key() == once.canonical_key()

    @relaxed
    @given(expr_strategy)
    def test_wire_round_trip_preserves_the_canonical_form(self, expr):
        assert expr_from_dict(expr.to_dict()).normalize() == expr.normalize()
