"""Unit tests for the LRU buffer pool and its cache-miss accounting."""

from __future__ import annotations

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import MemoryPageFile
from repro.storage.stats import IOStatistics


def make_pool(capacity=2, page_size=64):
    pager = MemoryPageFile(page_size=page_size)
    stats = IOStatistics()
    return BufferPool(pager, capacity=capacity, stats=stats), pager, stats


class TestBasics:
    def test_zero_capacity_rejected(self):
        with pytest.raises(BufferPoolError):
            BufferPool(MemoryPageFile(), capacity=0)

    def test_allocate_page_is_cached(self):
        pool, _, stats = make_pool()
        page_id = pool.allocate_page()
        pool.get_page(page_id)
        assert stats.page_reads == 0
        assert stats.cache_hits == 1

    def test_miss_then_hit(self):
        pool, pager, stats = make_pool(capacity=2)
        page_id = pager.allocate()
        pool.get_page(page_id)
        pool.get_page(page_id)
        assert stats.page_reads == 1
        assert stats.cache_hits == 1
        assert stats.logical_reads == 2

    def test_put_page_too_large_rejected(self):
        pool, _, _ = make_pool(page_size=16)
        page_id = pool.allocate_page()
        with pytest.raises(BufferPoolError):
            pool.put_page(page_id, b"x" * 17)

    def test_mark_dirty_unknown_page_rejected(self):
        pool, pager, _ = make_pool()
        page_id = pager.allocate()
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(page_id)


class TestEvictionAndWriteback:
    def test_lru_eviction_counts_new_misses(self):
        pool, pager, stats = make_pool(capacity=2)
        ids = [pager.allocate() for _ in range(3)]
        pool.get_page(ids[0])
        pool.get_page(ids[1])
        pool.get_page(ids[2])  # evicts ids[0]
        pool.get_page(ids[0])  # miss again
        assert stats.page_reads == 4
        assert pool.resident_pages == 2

    def test_recently_used_page_survives_eviction(self):
        pool, pager, stats = make_pool(capacity=2)
        ids = [pager.allocate() for _ in range(3)]
        pool.get_page(ids[0])
        pool.get_page(ids[1])
        pool.get_page(ids[0])  # refresh page 0
        pool.get_page(ids[2])  # should evict page 1, not page 0
        pool.get_page(ids[0])
        assert stats.page_reads == 3  # page 0 never re-read

    def test_dirty_page_written_back_on_eviction(self):
        pool, pager, stats = make_pool(capacity=1)
        first = pool.allocate_page()
        pool.put_page(first, b"payload-one")
        second = pool.allocate_page()  # evicts the first page
        pool.put_page(second, b"payload-two")
        assert bytes(pager.read(first)).rstrip(b"\x00") == b"payload-one"
        assert stats.page_writes >= 1

    def test_flush_writes_all_dirty_pages(self):
        pool, pager, stats = make_pool(capacity=4)
        ids = [pool.allocate_page() for _ in range(3)]
        for index, page_id in enumerate(ids):
            pool.put_page(page_id, bytes([index + 1]) * 8)
        pool.flush()
        for index, page_id in enumerate(ids):
            assert pager.read(page_id)[0] == index + 1
        assert stats.page_writes == 3

    def test_clear_empties_the_pool(self):
        pool, pager, stats = make_pool(capacity=4)
        page_id = pool.allocate_page()
        pool.put_page(page_id, b"z")
        pool.clear()
        assert pool.resident_pages == 0
        pool.get_page(page_id)
        assert stats.page_reads == 1  # cold again after clear

    def test_mutating_cached_frame_persists_after_mark_dirty(self):
        pool, pager, _ = make_pool(capacity=2)
        page_id = pool.allocate_page()
        frame = pool.get_page(page_id)
        frame[0:3] = b"abc"
        pool.mark_dirty(page_id)
        pool.flush()
        assert pager.read(page_id)[:3] == b"abc"


class TestSequentialRandomClassification:
    def test_sequential_scan_is_classified_sequential(self):
        pool, pager, stats = make_pool(capacity=2)
        ids = [pager.allocate() for _ in range(5)]
        for page_id in ids:
            pool.get_page(page_id)
        assert stats.random_reads == 1  # only the first access
        assert stats.sequential_reads == 4

    def test_jumping_around_is_classified_random(self):
        pool, pager, stats = make_pool(capacity=2)
        ids = [pager.allocate() for _ in range(6)]
        for page_id in [ids[0], ids[3], ids[1], ids[5]]:
            pool.get_page(page_id)
        assert stats.random_reads == 4
        assert stats.sequential_reads == 0
