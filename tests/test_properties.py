"""Property-based tests: every index must agree with the brute-force oracle.

These are the strongest correctness guarantees in the suite: hypothesis
generates arbitrary small datasets (skewed towards few items so containment
relations actually occur) and arbitrary query sets, and every access method —
the OIF in several configurations, the classic IF, the unordered B-tree and
the signature file — must return exactly the oracle's answer for all three
predicates.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    InvertedFile,
    NaiveScanIndex,
    SignatureFile,
    UnorderedBTreeInvertedFile,
)
from repro.core import Dataset, OrderedInvertedFile
from repro.core.ordering import order_dataset

ITEMS = list("abcdefghij")

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=5),
    min_size=1,
    max_size=40,
)
query_strategy = st.sets(st.sampled_from(ITEMS + ["zz"]), min_size=1, max_size=4)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_all_indexes(dataset: Dataset):
    return [
        OrderedInvertedFile(dataset, block_capacity=3),
        OrderedInvertedFile(dataset, use_metadata=False, block_capacity=3),
        OrderedInvertedFile(dataset, compress=False),
        InvertedFile(dataset),
        UnorderedBTreeInvertedFile(dataset, block_capacity=3),
        SignatureFile(dataset, signature_bits=32, bits_per_item=3),
    ]


class TestAllIndexesMatchOracle:
    @relaxed
    @given(transactions_strategy, st.lists(query_strategy, min_size=1, max_size=5))
    def test_subset_queries(self, transactions, queries):
        dataset = Dataset.from_transactions(transactions)
        oracle = NaiveScanIndex(dataset)
        indexes = build_all_indexes(dataset)
        for query in queries:
            expected = oracle.subset_query(query)
            for index in indexes:
                assert index.subset_query(query) == expected, (index.name, query)

    @relaxed
    @given(transactions_strategy, st.lists(query_strategy, min_size=1, max_size=5))
    def test_equality_queries(self, transactions, queries):
        dataset = Dataset.from_transactions(transactions)
        oracle = NaiveScanIndex(dataset)
        indexes = build_all_indexes(dataset)
        for query in queries:
            expected = oracle.equality_query(query)
            for index in indexes:
                assert index.equality_query(query) == expected, (index.name, query)

    @relaxed
    @given(transactions_strategy, st.lists(query_strategy, min_size=1, max_size=5))
    def test_superset_queries(self, transactions, queries):
        dataset = Dataset.from_transactions(transactions)
        oracle = NaiveScanIndex(dataset)
        indexes = build_all_indexes(dataset)
        for query in queries:
            expected = oracle.superset_query(query)
            for index in indexes:
                assert index.superset_query(query) == expected, (index.name, query)


class TestStructuralInvariants:
    @relaxed
    @given(transactions_strategy)
    def test_metadata_regions_partition_id_space(self, transactions):
        dataset = Dataset.from_transactions(transactions)
        ordered = order_dataset(dataset)
        ordered.metadata.validate_partition(len(dataset))

    @relaxed
    @given(transactions_strategy)
    def test_reordering_is_a_bijection_preserving_set_values(self, transactions):
        dataset = Dataset.from_transactions(transactions)
        ordered = order_dataset(dataset)
        seen_old_ids = set()
        for internal_id in range(1, ordered.num_records + 1):
            original = ordered.original_id(internal_id)
            seen_old_ids.add(original)
            record = dataset.get(original)
            assert ordered.length_of(internal_id) == record.length
        assert seen_old_ids == set(dataset.record_ids)

    @relaxed
    @given(transactions_strategy)
    def test_oif_btree_invariants(self, transactions):
        dataset = Dataset.from_transactions(transactions)
        oif = OrderedInvertedFile(dataset, block_capacity=2)
        oif._table.btree.check_invariants()

    @relaxed
    @given(transactions_strategy)
    def test_queries_for_every_existing_record_find_it(self, transactions):
        dataset = Dataset.from_transactions(transactions)
        oif = OrderedInvertedFile(dataset)
        for record in dataset:
            assert record.record_id in oif.subset_query(record.items)
            assert record.record_id in oif.equality_query(record.items)
            assert record.record_id in oif.superset_query(record.items)

    @relaxed
    @given(transactions_strategy, query_strategy)
    def test_predicate_relationships(self, transactions, query):
        # equality answers are a subset of both subset and superset answers.
        dataset = Dataset.from_transactions(transactions)
        oif = OrderedInvertedFile(dataset)
        equality = set(oif.equality_query(query))
        assert equality <= set(oif.subset_query(query))
        assert equality <= set(oif.superset_query(query))
