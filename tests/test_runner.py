"""Tests for the experiment runner and its aggregation."""

from __future__ import annotations

import pytest

from repro.core.interfaces import QueryType
from repro.errors import ExperimentError
from repro.experiments.runner import (
    DEFAULT_FACTORIES,
    ExperimentRunner,
    if_factory,
    oif_factory,
    signature_factory,
    unordered_btree_factory,
)
from repro.workloads import WorkloadGenerator


@pytest.fixture(scope="module")
def workload(skewed_dataset):
    return WorkloadGenerator(skewed_dataset, seed=5).workload("subset", [2, 3], 3)


class TestFactories:
    def test_factory_names(self):
        assert oif_factory().name == "OIF"
        assert if_factory().name == "IF"
        assert unordered_btree_factory().name == "UBT"
        assert signature_factory().name == "SIG"

    def test_factory_kwargs_forwarded(self, skewed_dataset):
        index = oif_factory(use_metadata=False).build(skewed_dataset)
        assert index.use_metadata is False

    def test_default_factories_are_if_and_oif(self):
        assert [factory.name for factory in DEFAULT_FACTORIES] == ["IF", "OIF"]


class TestRunner:
    def test_run_workload_collects_one_result_per_query(self, skewed_oif, workload):
        runner = ExperimentRunner()
        run = runner.run_workload(skewed_oif, workload)
        assert len(run.results) == len(workload)
        assert run.query_type is QueryType.SUBSET

    def test_empty_workload_rejected(self, skewed_oif):
        runner = ExperimentRunner()
        with pytest.raises(ExperimentError):
            runner.run_queries(skewed_oif, [])

    def test_group_by_query_size(self, skewed_oif, workload):
        run = ExperimentRunner().run_workload(skewed_oif, workload)
        groups = {cost.group: cost for cost in run.by_query_size()}
        assert set(groups) == {2, 3}
        for cost in groups.values():
            assert cost.num_queries == 3
            assert cost.mean_page_accesses >= 0
            assert cost.mean_answers >= 1

    def test_overall_aggregation(self, skewed_oif, workload):
        run = ExperimentRunner().run_workload(skewed_oif, workload)
        overall = run.overall()
        assert overall.num_queries == len(workload)
        assert overall.mean_total_ms == pytest.approx(
            overall.mean_io_ms + overall.mean_cpu_ms
        )

    def test_compare_builds_all_indexes_and_uses_same_queries(self, skewed_dataset, workload):
        runner = ExperimentRunner()
        results = runner.compare(
            skewed_dataset, workload, (if_factory(), oif_factory(), unordered_btree_factory())
        )
        assert set(results) == {"IF", "OIF", "UBT"}
        # Same queries -> same answer cardinalities across all indexes.
        reference = [r.cardinality for r in results["IF"].results]
        for name in ("OIF", "UBT"):
            assert [r.cardinality for r in results[name].results] == reference

    def test_cold_cache_costs_more_than_warm(self, skewed_dataset, workload):
        cold = ExperimentRunner(drop_cache_per_query=True)
        warm = ExperimentRunner(drop_cache_per_query=False)
        index = oif_factory().build(skewed_dataset)
        cold_pages = cold.run_workload(index, workload).overall().mean_page_accesses
        warm_pages = warm.run_workload(index, workload).overall().mean_page_accesses
        assert warm_pages <= cold_pages
