"""Tests for the unordered B-tree inverted file (ordering ablation baseline)."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines import UnorderedBTreeInvertedFile
from repro.errors import QueryError
from tests.conftest import sample_queries


class TestCorrectness:
    def test_paper_examples(self, paper_dataset):
        index = UnorderedBTreeInvertedFile(paper_dataset)
        assert index.subset_query({"a", "d"}) == [101, 104, 114]
        assert index.superset_query({"a", "c"}) == [106, 113]
        assert index.equality_query({"a", "c"}) == [106]

    def test_all_pairs_match_oracle(self, paper_dataset, paper_oracle):
        index = UnorderedBTreeInvertedFile(paper_dataset)
        for pair in itertools.combinations("abcdefghij", 2):
            for query_type in ("subset", "equality", "superset"):
                assert index.query(query_type, set(pair)) == paper_oracle.query(
                    query_type, set(pair)
                )

    def test_random_queries(self, skewed_ubt, skewed_oracle, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=50, max_size=4, seed=71):
            for query_type in ("subset", "equality", "superset"):
                assert skewed_ubt.query(query_type, query) == skewed_oracle.query(
                    query_type, query
                )

    def test_small_blocks(self, skewed_dataset, skewed_oracle):
        index = UnorderedBTreeInvertedFile(skewed_dataset, block_capacity=4)
        for query in sample_queries(skewed_dataset, count=25, max_size=3, seed=72):
            assert index.subset_query(query) == skewed_oracle.subset_query(query)

    def test_unknown_items(self, skewed_ubt):
        assert skewed_ubt.subset_query({"missing"}) == []
        assert skewed_ubt.superset_query({"missing"}) == []

    def test_empty_query_rejected(self, skewed_ubt):
        with pytest.raises(QueryError):
            skewed_ubt.equality_query(set())


class TestStructure:
    def test_records_keep_original_ids(self, skewed_ubt, skewed_dataset):
        item = skewed_ubt.order.item_at(0)
        rank = skewed_ubt.order.rank_of(item)
        ids = [posting.record_id for posting in skewed_ubt.scan_list(rank)]
        assert ids == sorted(ids)
        assert set(ids) <= set(skewed_dataset.record_ids)

    def test_scan_list_window(self, skewed_ubt):
        rank = skewed_ubt.order.rank_of(skewed_ubt.order.item_at(0))
        full = [posting.record_id for posting in skewed_ubt.scan_list(rank)]
        low, high = full[len(full) // 4], full[3 * len(full) // 4]
        window = [posting.record_id for posting in skewed_ubt.scan_list(rank, low, high)]
        assert window == [record_id for record_id in full if low <= record_id <= high]

    def test_block_count_positive(self, skewed_ubt):
        assert skewed_ubt.num_blocks > 0

    def test_id_window_skips_pages(self, larger_dataset):
        index = UnorderedBTreeInvertedFile(
            larger_dataset, block_capacity=8, page_size=512, cache_bytes=2048
        )
        rank = 0
        full_ids = [posting.record_id for posting in index.scan_list(rank)]
        middle = full_ids[len(full_ids) // 2]
        index.drop_cache()
        before = index.stats.snapshot()
        list(index.scan_list(rank))
        full_pages = index.stats.since(before).page_reads
        index.drop_cache()
        before = index.stats.snapshot()
        list(index.scan_list(rank, middle, middle + 1))
        window_pages = index.stats.since(before).page_reads
        assert window_pages < full_pages


class TestComparisonWithOIF:
    def test_same_answers_as_oif(self, skewed_ubt, skewed_oif, skewed_dataset):
        for query in sample_queries(skewed_dataset, count=30, max_size=4, seed=73):
            for query_type in ("subset", "equality", "superset"):
                assert skewed_ubt.query(query_type, query) == skewed_oif.query(
                    query_type, query
                )
