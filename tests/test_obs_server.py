"""Observability endpoints over a real socket: /metrics, /slowlog, tracing.

A dedicated server fixture (module-scoped, ephemeral port) runs with a 0 ms
slow-query threshold and tracing enabled, so every query is slow-logged with
a span breakdown and the Prometheus endpoint has data to expose.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.service import ServiceClient, ServiceServer

TRANSACTIONS = [
    {"a", "b", "d"},
    {"a", "b", "e"},
    {"a", "c"},
    {"b", "c", "d"},
    {"a", "b"},
]


@pytest.fixture(scope="module")
def server():
    with ServiceServer(
        max_workers=2,
        cache_capacity=32,
        slow_query_ms=0.0,
        trace=True,
    ) as running:
        yield running
    trace.disable()


@pytest.fixture(scope="module")
def client(server):
    test_client = ServiceClient(port=server.port)
    test_client.create_index("obs", transactions=TRANSACTIONS)
    return test_client


def parse_prometheus(text: str) -> "tuple[dict[str, float], dict[str, str]]":
    samples: dict[str, float] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
        elif line and not line.startswith("#"):
            series, value = line.rsplit(" ", 1)
            samples[series] = float(value)
    return samples, types


def test_metrics_exposes_latency_histograms(client):
    for _ in range(3):
        client.query("obs", "subset", ["a", "b"])
    samples, types = parse_prometheus(client.metrics())

    assert types["repro_query_latency_ms"] == "histogram"
    assert types["repro_queries_total"] == "counter"
    assert types["repro_uptime_seconds"] == "gauge"

    # Global and per-index histograms both carry sum/count series.
    assert samples["repro_query_latency_ms_count"] >= 3
    assert samples['repro_query_latency_ms_count{index="obs"}'] >= 3
    assert samples["repro_query_latency_ms_sum"] >= 0
    assert samples['repro_query_latency_ms_bucket{le="+Inf"}'] >= 3
    assert samples["repro_uptime_seconds"] >= 0
    assert samples["repro_resident_indexes"] >= 1

    # p50/p95/p99 are derivable from the bucket series via /stats' summary.
    latency = client.stats()["serving"]["latency"]
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        assert latency[key] is not None


def test_metrics_outcome_counters_track_cache_hits(client):
    client.query("obs", "subset", ["b", "c"])
    client.query("obs", "subset", ["b", "c"])
    samples, _ = parse_prometheus(client.metrics())
    assert samples['repro_queries_total{outcome="executed"}'] >= 1
    assert samples['repro_queries_total{outcome="cached"}'] >= 1


def test_slowlog_records_queries_with_trace_breakdown(client):
    client.query("obs", "superset", ["a", "b", "d"])
    payload = client.slowlog()
    assert payload["threshold_ms"] == 0.0
    entries = payload["entries"]
    assert entries, "threshold 0 must log every query"
    entry = entries[-1]
    assert entry["latency_ms"] >= 0
    assert entry["index"] == "obs"
    expr = json.loads(entry["expr"])
    assert expr["op"] == "superset"
    assert set(entry["counters"]) >= {"page_accesses", "cached", "deduplicated"}
    # Tracing is on, so the executed slow queries carry a span tree.
    traced = [e for e in entries if e.get("trace")]
    assert traced
    tree = traced[-1]["trace"]
    assert tree["name"] == "query"
    assert {child["name"] for child in tree["children"]} == {"lookup", "execute"}


def test_trace_child_spans_cover_the_query_window(client):
    client.query("obs", "equality", ["a", "c"])
    traced = [e for e in client.slowlog()["entries"] if e.get("trace")]
    tree = traced[-1]["trace"]
    child_sum = sum(child["duration_ms"] for child in tree["children"])
    assert child_sum <= tree["duration_ms"] + 1e-6


def test_errors_are_attributed_per_index(client):
    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        client.query("no-such-index", "subset", ["a"])
    stats = client.stats()["serving"]
    assert stats["errors"] >= 1
    assert stats["errors_per_index"].get("no-such-index", 0) >= 1
    samples, _ = parse_prometheus(client.metrics())
    assert samples['repro_errors_total{index="no-such-index"}'] >= 1


def test_metrics_endpoint_is_plain_text(server, client):
    import urllib.request

    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}/metrics", timeout=5
    ) as response:
        assert response.status == 200
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain")
        body = response.read().decode("utf-8")
    assert "# TYPE repro_query_latency_ms histogram" in body
