"""Unit tests for the page-file backends."""

from __future__ import annotations

import pytest

from repro.errors import PageError
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePageFile, MemoryPageFile


class TestMemoryPageFile:
    def test_allocate_returns_dense_ids(self):
        pager = MemoryPageFile(page_size=256)
        assert [pager.allocate() for _ in range(3)] == [0, 1, 2]
        assert pager.num_pages == 3

    def test_new_pages_are_zeroed(self):
        pager = MemoryPageFile(page_size=64)
        page_id = pager.allocate()
        assert pager.read(page_id) == bytearray(64)

    def test_write_then_read(self):
        pager = MemoryPageFile(page_size=32)
        page_id = pager.allocate()
        pager.write(page_id, b"hello")
        data = pager.read(page_id)
        assert data[:5] == b"hello"
        assert len(data) == 32

    def test_short_payload_is_padded(self):
        pager = MemoryPageFile(page_size=16)
        page_id = pager.allocate()
        pager.write(page_id, b"ab")
        assert pager.read(page_id) == bytearray(b"ab" + b"\x00" * 14)

    def test_oversized_payload_rejected(self):
        pager = MemoryPageFile(page_size=8)
        page_id = pager.allocate()
        with pytest.raises(PageError):
            pager.write(page_id, b"123456789")

    def test_out_of_range_read_rejected(self):
        pager = MemoryPageFile()
        with pytest.raises(PageError):
            pager.read(0)

    def test_out_of_range_write_rejected(self):
        pager = MemoryPageFile()
        with pytest.raises(PageError):
            pager.write(5, b"x")

    def test_invalid_page_size_rejected(self):
        with pytest.raises(PageError):
            MemoryPageFile(page_size=0)

    def test_read_returns_a_copy(self):
        pager = MemoryPageFile(page_size=16)
        page_id = pager.allocate()
        pager.write(page_id, b"abc")
        copy = pager.read(page_id)
        copy[0] = 0
        assert pager.read(page_id)[:3] == b"abc"

    def test_default_page_size(self):
        assert MemoryPageFile().page_size == DEFAULT_PAGE_SIZE


class TestFilePageFile:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePageFile(path, page_size=128)
        first = pager.allocate()
        second = pager.allocate()
        pager.write(first, b"first page")
        pager.write(second, b"second page")
        assert bytes(pager.read(first)).rstrip(b"\x00") == b"first page"
        assert bytes(pager.read(second)).rstrip(b"\x00") == b"second page"
        pager.close()

    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePageFile(path, page_size=64)
        page_id = pager.allocate()
        pager.write(page_id, b"persisted")
        pager.close()

        reopened = FilePageFile(path, page_size=64)
        assert reopened.num_pages == 1
        assert bytes(reopened.read(page_id)).rstrip(b"\x00") == b"persisted"
        reopened.close()

    def test_mismatched_page_size_rejected(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePageFile(path, page_size=64)
        pager.allocate()
        pager.close()
        with pytest.raises(PageError):
            FilePageFile(path, page_size=100)

    def test_out_of_range_access(self, tmp_path):
        pager = FilePageFile(str(tmp_path / "x.db"), page_size=64)
        with pytest.raises(PageError):
            pager.read(0)
        pager.close()
