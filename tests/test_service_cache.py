"""Unit tests for the serving-layer LRU result cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.interfaces import QueryType
from repro.core.query import And, Not, Subset, Superset
from repro.errors import ServiceError
from repro.service.cache import ResultCache, make_key


def test_make_key_normalizes_query_type_and_items():
    key = make_key("idx", "subset", ["b", "a"])
    assert key == ("idx", Subset(frozenset({"a", "b"})))
    assert make_key("idx", QueryType.SUBSET, {"a", "b"}) == key
    assert make_key("idx", Subset({"b", "a"})) == key


def test_make_key_canonicalizes_equivalent_expressions():
    """Construction order and double negation must not split cache slots."""
    left = make_key("idx", And((Subset({"a"}), Not(Superset({"a", "b"})))))
    right = make_key("idx", And((Not(Not(Not(Superset({"b", "a"})))), Subset({"a"}))))
    assert left == right


def test_capacity_must_be_positive():
    with pytest.raises(ServiceError):
        ResultCache(capacity=0)


def test_hit_and_miss_accounting_is_exact():
    cache = ResultCache(capacity=4)
    key = make_key("idx", "subset", {"a"})
    assert cache.get(key) is None
    cache.put(key, (1, 2, 3))
    assert cache.get(key) == (1, 2, 3)
    assert cache.get(key) == (1, 2, 3)
    assert cache.get(make_key("idx", "subset", {"b"})) is None
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 2
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    first = make_key("idx", "subset", {"a"})
    second = make_key("idx", "subset", {"b"})
    third = make_key("idx", "subset", {"c"})
    cache.put(first, (1,))
    cache.put(second, (2,))
    cache.get(first)            # refresh `first` so `second` is the LRU entry
    cache.put(third, (3,))
    assert cache.get(second) is None
    assert cache.get(first) == (1,)
    assert cache.get(third) == (3,)
    assert cache.evictions == 1


def test_put_refreshes_existing_entry_without_eviction():
    cache = ResultCache(capacity=2)
    key = make_key("idx", "equality", {"a"})
    cache.put(key, (1,))
    cache.put(key, (1, 2))
    assert len(cache) == 1
    assert cache.get(key) == (1, 2)
    assert cache.evictions == 0


def test_invalidate_index_drops_only_that_index():
    cache = ResultCache(capacity=8)
    cache.put(make_key("one", "subset", {"a"}), (1,))
    cache.put(make_key("one", "superset", {"a", "b"}), (2,))
    cache.put(make_key("two", "subset", {"a"}), (3,))
    assert cache.invalidate_index("one") == 2
    assert cache.get(make_key("two", "subset", {"a"})) == (3,)
    assert cache.get(make_key("one", "subset", {"a"})) is None
    assert cache.invalidations == 2


def test_invalidate_items_is_predicate_aware():
    cache = ResultCache(capacity=16)
    subset_hit = make_key("idx", "subset", {"a", "b"})       # qs ⊆ {a,b,c} -> stale
    subset_safe = make_key("idx", "subset", {"a", "z"})      # z ∉ S -> still valid
    equality_hit = make_key("idx", "equality", {"a", "b", "c"})
    equality_safe = make_key("idx", "equality", {"a", "b"})
    superset_hit = make_key("idx", "superset", {"a", "b", "c", "d"})  # S ⊆ qs -> stale
    superset_safe = make_key("idx", "superset", {"a", "b"})
    other_index = make_key("other", "subset", {"a"})
    for key in (subset_hit, subset_safe, equality_hit, equality_safe,
                superset_hit, superset_safe, other_index):
        cache.put(key, (1,))

    dropped = cache.invalidate_items("idx", [frozenset({"a", "b", "c"})])

    assert dropped == 3
    for stale in (subset_hit, equality_hit, superset_hit):
        assert cache.get(stale) is None
    for valid in (subset_safe, equality_safe, superset_safe, other_index):
        assert cache.get(valid) == (1,)


def test_invalidate_items_with_empty_batch_is_a_noop():
    cache = ResultCache(capacity=4)
    cache.put(make_key("idx", "subset", {"a"}), (1,))
    assert cache.invalidate_items("idx", []) == 0
    assert len(cache) == 1


def test_eviction_keeps_the_per_index_registry_consistent():
    """An evicted entry must not be double-counted by a later invalidation."""
    cache = ResultCache(capacity=2)
    first = make_key("one", "subset", {"a"})
    cache.put(first, (1,))
    cache.put(make_key("two", "subset", {"a"}), (2,))
    cache.put(make_key("two", "subset", {"b"}), (3,))  # evicts `first`
    assert cache.evictions == 1
    assert cache.invalidate_index("one") == 0
    assert cache.invalidate_index("two") == 2
    assert len(cache) == 0


def test_clear_counts_as_invalidation():
    cache = ResultCache(capacity=4)
    cache.put(make_key("idx", "subset", {"a"}), (1,))
    cache.put(make_key("idx", "subset", {"b"}), (2,))
    cache.clear()
    assert len(cache) == 0
    assert cache.invalidations == 2


def test_concurrent_puts_and_gets_respect_capacity():
    cache = ResultCache(capacity=32)
    errors: list[BaseException] = []

    def worker(worker_id: int) -> None:
        try:
            for i in range(200):
                key = make_key("idx", "subset", {f"w{worker_id}", f"i{i % 40}"})
                cache.put(key, (worker_id, i))
                cache.get(key)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 32
