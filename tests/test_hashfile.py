"""Unit tests for the hash-organized table with overflow value chains."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashFileError, KeyNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.hashfile import HashFile
from repro.storage.pager import MemoryPageFile
from repro.storage.stats import IOStatistics


def make_hash(num_buckets=4, page_size=256, capacity=16):
    pager = MemoryPageFile(page_size=page_size)
    stats = IOStatistics()
    pool = BufferPool(pager, capacity=capacity, stats=stats)
    return HashFile(pool, num_buckets=num_buckets), stats


class TestBasics:
    def test_put_and_get(self):
        table, _ = make_hash()
        table.put(b"a", b"value-a")
        table.put(b"b", b"value-b")
        assert table.get(b"a") == b"value-a"
        assert table.get(b"b") == b"value-b"

    def test_missing_key_raises(self):
        table, _ = make_hash()
        with pytest.raises(KeyNotFoundError):
            table.get(b"missing")

    def test_contains(self):
        table, _ = make_hash()
        table.put(b"x", b"1")
        assert table.contains(b"x")
        assert not table.contains(b"y")

    def test_duplicate_put_rejected(self):
        table, _ = make_hash()
        table.put(b"x", b"1")
        with pytest.raises(HashFileError):
            table.put(b"x", b"2")

    def test_replace(self):
        table, _ = make_hash()
        table.put(b"x", b"1")
        table.put(b"x", b"2" * 100, replace=True)
        assert table.get(b"x") == b"2" * 100

    def test_empty_value(self):
        table, _ = make_hash()
        table.put(b"empty", b"")
        assert table.get(b"empty") == b""

    def test_invalid_bucket_count(self):
        pool = BufferPool(MemoryPageFile(), capacity=4)
        with pytest.raises(HashFileError):
            HashFile(pool, num_buckets=0)

    def test_keys_and_len(self):
        table, _ = make_hash()
        for name in [b"a", b"b", b"c"]:
            table.put(name, b"v")
        assert sorted(table.keys()) == [b"a", b"b", b"c"]
        assert len(table) == 3


class TestLargeValues:
    def test_multi_page_value_round_trips(self):
        table, _ = make_hash(page_size=128)
        value = bytes(range(256)) * 4  # 1024 bytes across several 128-byte pages
        table.put(b"big", value)
        assert table.get(b"big") == value

    def test_value_page_count(self):
        table, _ = make_hash(page_size=128)
        table.put(b"big", b"z" * 1000)
        assert table.value_page_count(b"big") == 8
        table.put(b"small", b"z" * 10)
        assert table.value_page_count(b"small") == 1

    def test_value_page_count_missing_key(self):
        table, _ = make_hash()
        with pytest.raises(KeyNotFoundError):
            table.value_page_count(b"nope")

    def test_reading_large_value_is_mostly_sequential(self):
        table, stats = make_hash(page_size=128, capacity=2)
        table.put(b"big", b"q" * 2000)
        table.pool.clear()
        stats.reset()
        table.get(b"big")
        assert stats.sequential_reads >= stats.random_reads

    def test_small_values_share_pages(self):
        table, _ = make_hash(page_size=256, num_buckets=1)
        pages_before = table.pool.page_file.num_pages
        for i in range(8):
            table.put(f"k{i}".encode(), b"tiny")
        pages_after = table.pool.page_file.num_pages
        # Eight 4-byte values must not take eight dedicated pages.
        assert pages_after - pages_before <= 2


class TestBucketOverflow:
    def test_many_keys_in_one_bucket(self):
        # One bucket forces overflow bucket pages; all keys must stay reachable.
        table, _ = make_hash(num_buckets=1, page_size=128)
        for i in range(40):
            table.put(f"key-{i:03d}".encode(), f"value-{i}".encode())
        for i in range(40):
            assert table.get(f"key-{i:03d}".encode()) == f"value-{i}".encode()
        assert len(table) == 40


class TestAgainstDictModel:
    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=10),
            st.binary(min_size=0, max_size=400),
            max_size=40,
        )
    )
    def test_matches_dict(self, model):
        table, _ = make_hash(num_buckets=3, page_size=256)
        for key, value in model.items():
            table.put(key, value)
        for key, value in model.items():
            assert table.get(key) == value
        assert sorted(table.keys()) == sorted(model)
