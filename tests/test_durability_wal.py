"""Write-ahead log framing: append/recover roundtrip, torn tails, policies."""

from __future__ import annotations

import os
import struct

import pytest

from repro.durability.wal import FSYNC_POLICIES, WalScan, WriteAheadLog
from repro.errors import DurabilityError


@pytest.fixture()
def wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.log")


def test_append_recover_roundtrip(wal_path):
    wal = WriteAheadLog(wal_path)
    frames = [
        {"op": "insert", "lsn": 1, "ids": [7], "sets": [["a", "b"]]},
        {"op": "delete", "lsn": 2, "ids": [3]},
        {"op": "insert", "lsn": 3, "ids": [8, 9], "sets": [["c"], ["d", "e"]]},
    ]
    for frame in frames:
        wal.append(frame)
    scan = wal.recover()
    assert isinstance(scan, WalScan)
    assert scan.records == frames
    assert scan.truncated_bytes == 0
    wal.close()


def test_recover_survives_reopen(wal_path):
    wal = WriteAheadLog(wal_path)
    wal.append({"op": "insert", "lsn": 1, "ids": [1], "sets": [["x"]]})
    wal.close()
    reopened = WriteAheadLog(wal_path)
    assert reopened.recover().records == [
        {"op": "insert", "lsn": 1, "ids": [1], "sets": [["x"]]}
    ]
    reopened.close()


def test_torn_tail_is_detected_and_truncated(wal_path):
    wal = WriteAheadLog(wal_path)
    good = {"op": "insert", "lsn": 1, "ids": [1], "sets": [["x"]]}
    wal.append(good)
    wal.append({"op": "insert", "lsn": 2, "ids": [2], "sets": [["y"]]})
    wal.close()
    # Chop bytes off the last frame, simulating a crash mid-append.
    size = os.path.getsize(wal_path)
    with open(wal_path, "r+b") as handle:
        handle.truncate(size - 5)
    wal = WriteAheadLog(wal_path)
    scan = wal.recover()
    assert scan.records == [good], "only the intact prefix replays"
    assert scan.truncated_bytes > 0
    # The tail was physically removed, so a fresh append continues cleanly.
    wal.append({"op": "delete", "lsn": 2, "ids": [1]})
    assert [frame["lsn"] for frame in wal.recover().records] == [1, 2]
    wal.close()


def test_corrupt_crc_truncates_from_the_bad_frame(wal_path):
    wal = WriteAheadLog(wal_path)
    wal.append({"op": "insert", "lsn": 1, "ids": [1], "sets": [["x"]]})
    wal.append({"op": "insert", "lsn": 2, "ids": [2], "sets": [["y"]]})
    end_of_first = wal.size_bytes
    wal.append({"op": "insert", "lsn": 3, "ids": [3], "sets": [["z"]]})
    wal.close()
    # Flip one payload byte of the middle... actually of the last frame.
    with open(wal_path, "r+b") as handle:
        handle.seek(end_of_first + struct.calcsize("<II") + 2)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))
    wal = WriteAheadLog(wal_path)
    scan = wal.recover()
    assert [frame["lsn"] for frame in scan.records] == [1, 2]
    assert scan.truncated_bytes > 0
    wal.close()


def test_reset_drops_all_frames(wal_path):
    wal = WriteAheadLog(wal_path)
    wal.append({"op": "delete", "lsn": 1, "ids": [5]})
    header_only = WriteAheadLog(str(os.path.dirname(wal_path)) + "/empty.log")
    wal.reset()
    assert wal.size_bytes == header_only.size_bytes
    assert wal.recover().records == []
    wal.close()
    header_only.close()


def test_header_validation(tmp_path):
    bogus = tmp_path / "bogus.log"
    bogus.write_bytes(b"NOPE\x01\x00\x00\x00")
    with pytest.raises(DurabilityError, match="WAL magic"):
        WriteAheadLog(str(bogus))
    short = tmp_path / "short.log"
    short.write_bytes(b"RW")
    with pytest.raises(DurabilityError, match="too short"):
        WriteAheadLog(str(short))


def test_unknown_fsync_policy_rejected(wal_path):
    with pytest.raises(DurabilityError, match="fsync policy"):
        WriteAheadLog(wal_path, fsync="sometimes")
    assert set(FSYNC_POLICIES) == {"always", "never"}


@pytest.mark.parametrize("fsync", FSYNC_POLICIES)
def test_both_policies_ack_durable_frames(wal_path, fsync):
    wal = WriteAheadLog(wal_path, fsync=fsync)
    wal.append({"op": "insert", "lsn": 1, "ids": [1], "sets": [["q"]]})
    wal.close()
    # Even "never" flushes to the OS on append, so a process exit (as opposed
    # to power loss) keeps the frame.
    assert WriteAheadLog(wal_path).recover().records != []
