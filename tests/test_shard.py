"""Unit tests for the partition-aware index layer (repro.core.shard)."""

from __future__ import annotations

import pytest

from repro.core import Dataset, OrderedInvertedFile, ShardedIndex
from repro.core.query import And, Equality, Not, Or, Subset, Superset
from repro.core.records import Record
from repro.core.shard import (
    FanoutPlan,
    HashPartitioner,
    MergedShardCursor,
    RoundRobinPartitioner,
    make_partitioner,
    merge_cursors,
    stable_id_hash,
)
from repro.core.updates import ShardedDeltaBuffer, UpdatableOIF, UpdatableShardedOIF
from repro.errors import QueryError
from repro.storage.stats import DiskModel, IOSnapshot


class TestPartitioners:
    def test_hash_assignment_is_deterministic_and_in_range(self):
        partitioner = HashPartitioner(4)
        assignments = [partitioner.shard_of(record_id) for record_id in range(1000)]
        assert assignments == [partitioner.shard_of(record_id) for record_id in range(1000)]
        assert set(assignments) == {0, 1, 2, 3}

    def test_stable_hash_does_not_depend_on_process_seed(self):
        # Fixed reference values: if these move, shard layouts of persisted
        # deployments silently change.
        assert stable_id_hash(1) == stable_id_hash(1)
        assert stable_id_hash(1) != stable_id_hash(2)
        assert stable_id_hash(0) == 16294208416658607535

    def test_round_robin_stripes_dense_ids_evenly(self):
        partitioner = RoundRobinPartitioner(3)
        groups = partitioner.split(Record(i, frozenset("a")) for i in range(9))
        assert [len(group) for group in groups] == [3, 3, 3]
        assert [record.record_id for record in groups[1]] == [1, 4, 7]

    def test_split_covers_every_record_exactly_once(self):
        partitioner = HashPartitioner(5)
        records = [Record(i, frozenset("ab")) for i in range(57)]
        groups = partitioner.split(records)
        flattened = sorted(r.record_id for group in groups for r in group)
        assert flattened == list(range(57))

    def test_make_partitioner_rejects_unknown_strategy_and_bad_counts(self):
        with pytest.raises(QueryError):
            make_partitioner("zigzag", 2)
        with pytest.raises(QueryError):
            HashPartitioner(0)
        with pytest.raises(QueryError):
            make_partitioner(HashPartitioner(2), 3)

    def test_make_partitioner_passes_instances_through(self):
        partitioner = RoundRobinPartitioner(2)
        assert make_partitioner(partitioner, 2) is partitioner
        assert make_partitioner("ROUND_ROBIN", 4).num_shards == 4


class TestIOSnapshotAlgebra:
    def test_add_mirrors_sub(self):
        a = IOSnapshot(page_reads=5, page_writes=2, sequential_reads=3,
                       random_reads=2, logical_reads=9, cache_hits=4)
        b = IOSnapshot(page_reads=1, page_writes=1, sequential_reads=1,
                       random_reads=0, logical_reads=2, cache_hits=1)
        total = a + b
        assert total - b == a
        assert total - a == b
        assert total.page_reads == 6 and total.cache_hits == 5

    def test_sum_over_snapshots(self):
        parts = [IOSnapshot(page_reads=i) for i in range(4)]
        assert sum(parts, IOSnapshot()).page_reads == 6


class TestMergeCursors:
    def test_round_robin_interleaving_and_slice(self):
        streams = [iter([1, 4, 7]), iter([2, 5]), iter([3])]
        assert list(merge_cursors(streams)) == [1, 2, 3, 4, 5, 7]

    def test_offset_and_count(self):
        streams = [iter([1, 3, 5]), iter([2, 4, 6])]
        assert list(merge_cursors(streams, count=3, offset=1)) == [2, 3, 4]

    def test_zero_count_pulls_nothing(self):
        pulled = []

        def stream():
            pulled.append(True)
            yield 1

        assert list(merge_cursors([stream()], count=0)) == []
        assert pulled == []

    def test_limit_does_not_drain_noncontributing_streams(self):
        drained = []

        def stream(name, ids):
            for record_id in ids:
                drained.append(name)
                yield record_id

        out = list(
            merge_cursors([stream("a", range(0, 100)), stream("b", range(100, 200))], count=4)
        )
        assert len(out) == 4
        # Only the pulls the slice needed happened: 2 per stream, not 100.
        assert len(drained) == 4


@pytest.fixture(scope="module", params=["hash", "round_robin"])
def sharded_pair(request, larger_dataset):
    """A (monolithic, sharded) OIF pair over the same 2000-record dataset."""
    return (
        OrderedInvertedFile(larger_dataset),
        ShardedIndex(larger_dataset, 4, strategy=request.param),
    )


@pytest.fixture(scope="module")
def paged_pair():
    """Index pair over a dataset whose hot lists span many (small) pages.

    Early-stop savings only show when the driving inverted list crosses
    block/page boundaries, so this fixture shrinks the page size and picks a
    frequent item that is answered from list blocks rather than from the
    (page-free) metadata region.
    """
    from repro.datasets import SyntheticConfig, generate_synthetic

    dataset = generate_synthetic(
        SyntheticConfig(num_records=20_000, domain_size=500, zipf_order=0.8, seed=7)
    )
    mono = OrderedInvertedFile(dataset, page_size=1024)
    sharded = ShardedIndex(dataset, 4, page_size=1024)
    vocabulary = dataset.vocabulary
    by_support = sorted(vocabulary, key=vocabulary.support, reverse=True)
    costs = []
    for item in by_support[:8]:
        mono.drop_cache()
        result = mono.measured_execute(Subset(frozenset([item])))
        costs.append((result.page_accesses, item))
    _, item = max(costs)
    return mono, sharded, item


class TestShardedIndex:
    def test_implements_the_contract_for_all_predicates(self, sharded_pair):
        mono, sharded = sharded_pair
        items = sorted(sharded.dataset.vocabulary, key=str)[:3]
        for query_type in ("subset", "equality", "superset"):
            assert sharded.query(query_type, items[:2]) == mono.query(query_type, items[:2])

    def test_composite_expressions_match_the_monolithic_index(self, sharded_pair):
        mono, sharded = sharded_pair
        a, b, c = sorted(sharded.dataset.vocabulary, key=str)[:3]
        expr = Or((
            And((Subset(frozenset([a])), Not(Superset(frozenset([a, b]))))),
            Subset(frozenset([b, c])),
        ))
        assert sharded.evaluate(expr) == mono.evaluate(expr)

    def test_cursor_io_delta_sums_page_reads_across_shards(self, sharded_pair):
        _, sharded = sharded_pair
        item = sorted(sharded.dataset.vocabulary, key=str)[0]
        sharded.drop_cache()
        cursor = sharded.execute(Subset(frozenset([item])))
        cursor.fetch_all()
        delta = cursor.io_delta()
        per_shard = sum(shard.stats.page_reads for shard in sharded.live_shards)
        assert delta.page_reads > 0
        # The cursor's aggregated delta must equal the per-shard totals
        # accumulated by this (cold-started) traversal.
        assert delta.page_reads <= per_shard

    def test_limit_reads_strictly_fewer_pages_than_the_full_scans(self, paged_pair):
        """Early-stop survives the k-way merge (acceptance criterion).

        A ``limit k`` over the sharded index must read strictly fewer data
        pages than draining either the sharded *or* the monolithic index —
        the merge may only pull the ``k`` ids it yields (plus the rotation's
        probe starts), never the tails of non-contributing shards.
        """
        mono, sharded, item = paged_pair
        expr = Subset(frozenset([item]))
        mono.drop_cache()
        mono_full = mono.measured_execute(expr)
        sharded.drop_cache()
        full = sharded.measured_execute(expr)
        assert full.cardinality == mono_full.cardinality > 100
        sharded.drop_cache()
        limited = sharded.measured_execute(expr.limit(10))
        assert limited.cardinality == 10
        assert 0 < limited.page_accesses < full.page_accesses
        assert limited.page_accesses < mono_full.page_accesses
        assert set(limited.record_ids) <= set(full.record_ids)

    def test_offset_limit_is_a_valid_slice(self, sharded_pair):
        mono, sharded = sharded_pair
        item = sorted(sharded.dataset.vocabulary, key=str)[1]
        expr = Subset(frozenset([item]))
        full = set(mono.evaluate(expr))
        sliced = list(sharded.execute(expr.limit(7, offset=3)))
        assert len(sliced) == min(7, max(0, len(full) - 3))
        assert set(sliced) <= full
        assert len(set(sliced)) == len(sliced), "merged shard streams must not duplicate"

    def test_more_shards_than_records_leaves_empty_slots(self):
        dataset = Dataset.from_transactions([{"a"}, {"a", "b"}, {"b"}])
        sharded = ShardedIndex(dataset, 8)
        assert sum(sharded.shard_record_counts()) == 3
        assert len(sharded.live_shards) <= 3
        assert sharded.evaluate(Subset(frozenset(["a"]))) == [1, 2]

    def test_index_size_and_snapshot_aggregate_over_shards(self, sharded_pair):
        _, sharded = sharded_pair
        assert sharded.index_size_bytes == sum(
            shard.index_size_bytes for shard in sharded.live_shards
        )
        total = sharded.io_snapshot()
        assert total.page_reads == sum(
            shard.stats.page_reads for shard in sharded.live_shards
        )

    def test_mixed_disk_models_across_shards_fail_loudly(self, larger_dataset):
        sharded = ShardedIndex(larger_dataset, 3)
        assert sharded.stats.disk_model == DiskModel()  # uniform: fine
        # Re-pricing one shard must make the aggregate refuse rather than
        # silently bill every shard at shard 0's rates.
        sharded.live_shards[1].stats.disk_model = DiskModel(random_access_ms=1.0)
        with pytest.raises(QueryError, match="different disk models"):
            sharded.stats.disk_model

    def test_parallel_build_matches_serial_build(self, larger_dataset):
        serial = ShardedIndex(larger_dataset, 4)
        parallel = ShardedIndex(larger_dataset, 4, max_workers=4)
        item = sorted(larger_dataset.vocabulary, key=str)[0]
        expr = Subset(frozenset([item]))
        assert serial.evaluate(expr) == parallel.evaluate(expr)
        assert serial.shard_record_counts() == parallel.shard_record_counts()

    def test_explain_renders_the_fanout_plan_without_io(self, sharded_pair):
        _, sharded = sharded_pair
        item = sorted(sharded.dataset.vocabulary, key=str)[0]
        sharded.drop_cache()
        before = sharded.io_snapshot()
        text = sharded.explain(Subset(frozenset([item])).limit(5))
        assert "fanout over" in text and "shard 0:" in text
        assert (sharded.io_snapshot() - before).page_reads == 0

    def test_execute_returns_a_merged_cursor_with_fanout_plan(self, sharded_pair):
        _, sharded = sharded_pair
        item = sorted(sharded.dataset.vocabulary, key=str)[0]
        cursor = sharded.execute(Subset(frozenset([item])))
        assert isinstance(cursor, MergedShardCursor)
        assert isinstance(cursor.plan, FanoutPlan)
        assert len(cursor.plan.shard_plans) == len(sharded.live_shards)

    def test_rejects_shared_environment_and_factory_plus_options(self, larger_dataset):
        with pytest.raises(QueryError):
            ShardedIndex(larger_dataset, 2, env=object())
        with pytest.raises(QueryError):
            ShardedIndex(
                larger_dataset, 2,
                factory=lambda ds: OrderedInvertedFile(ds), use_metadata=False,
            )

    def test_open_cursor_io_delta_survives_an_absorb(self, larger_dataset):
        """A cursor's accounting pins the shards it reads, not the live view.

        An ``absorb`` that swaps a shard in mid-traversal must neither erase
        the pages the cursor already read (fresh environment, zeroed
        counters) nor charge the rebuild's build I/O to the query.
        """
        sharded = ShardedIndex(larger_dataset, 4)
        item = sorted(larger_dataset.vocabulary, key=str)[0]
        sharded.drop_cache()
        cursor = sharded.execute(Subset(frozenset([item])))
        cursor.fetch(20)
        before = cursor.io_delta().page_reads
        assert before > 0
        next_id = max(sharded.dataset.record_ids) + 1
        sharded.absorb([Record(next_id, frozenset([item]))])
        after = cursor.io_delta().page_reads
        assert after == before

    def test_fanout_evaluate_breakdown_covers_every_live_shard(self, sharded_pair):
        mono, sharded = sharded_pair
        item = sorted(sharded.dataset.vocabulary, key=str)[0]
        expr = Subset(frozenset([item]))
        sharded.drop_cache()
        ids, stats = sharded.fanout_evaluate(expr)
        assert ids == mono.evaluate(expr)
        assert [stat.shard for stat in stats] == [
            position
            for position in range(sharded.num_shards)
            if sharded.shard_at(position) is not None
        ]
        assert sum(stat.matches for stat in stats) == len(ids)
        assert sum(stat.page_accesses for stat in stats) > 0


class TestShardedDeltaBuffer:
    def test_routes_records_to_their_shard_buffer(self):
        buffer = ShardedDeltaBuffer(RoundRobinPartitioner(3))
        for record_id in range(6):
            buffer.add(Record(record_id, frozenset("ab")))
        assert len(buffer) == 6
        assert buffer.pending_per_shard() == [2, 2, 2]
        assert [record.record_id for record in buffer.records] == list(range(6))

    def test_query_aggregates_across_buffers(self):
        buffer = ShardedDeltaBuffer(RoundRobinPartitioner(2))
        buffer.add(Record(1, frozenset("ab")))
        buffer.add(Record(2, frozenset("a")))
        assert buffer.query("subset", ["a"]) == [1, 2]
        assert buffer.query("equality", ["a"]) == [2]
        assert buffer.query("superset", ["a", "b"]) == [1, 2]
        with pytest.raises(QueryError):
            buffer.query("between", ["a"])
        buffer.clear()
        assert len(buffer) == 0


class TestUpdatableShardedOIF:
    @pytest.fixture()
    def pair(self, skewed_dataset):
        return UpdatableOIF(skewed_dataset), UpdatableShardedOIF(skewed_dataset, 4)

    def test_inserts_are_immediately_queryable_and_match_monolith(self, pair):
        mono, sharded = pair
        batch = [["a", "b", "zz"], ["zz"], ["a", "zz", "c"]]
        assert mono.insert(batch) == sharded.insert(batch)
        expr = Subset(frozenset(["zz"]))
        assert sharded.evaluate(expr) == mono.evaluate(expr)
        assert sharded.pending_updates == 3
        assert sum(sharded.pending_per_shard()) == 3

    def test_flush_rebuilds_only_shards_with_pending_records(self, skewed_dataset):
        sharded = UpdatableShardedOIF(skewed_dataset, 4, strategy="round_robin")
        next_id = max(skewed_dataset.record_ids) + 1
        # With round-robin striping one record lands in exactly one shard.
        target_shard = next_id % 4
        sharded.insert([["a", "b"]])
        before = [sharded.index.shard_at(position) for position in range(4)]
        report = sharded.flush()
        after = [sharded.index.shard_at(position) for position in range(4)]
        assert report.records_merged == 1
        for position in range(4):
            if position == target_shard:
                assert before[position] is not after[position]
            else:
                assert before[position] is after[position]

    def test_flush_matches_monolithic_answers_and_clears_delta(self, pair):
        mono, sharded = pair
        batch = [["a", "b"], ["c", "d", "e"], ["a"]]
        mono.insert(batch)
        sharded.insert(batch)
        mono.flush()
        report = sharded.flush()
        assert report.records_merged == 3
        assert report.page_writes > 0
        assert sharded.pending_updates == 0
        expr = Or((Subset(frozenset(["a"])), Equality(frozenset(["a", "b"]))))
        assert sharded.evaluate(expr) == mono.evaluate(expr)

    def test_parallel_flush_matches_serial_results(self, skewed_dataset):
        serial = UpdatableShardedOIF(skewed_dataset, 4)
        parallel = UpdatableShardedOIF(skewed_dataset, 4)
        batch = [[item] for item in "abcdefgh"]
        serial.insert(batch)
        parallel.insert(batch)
        serial.flush(max_workers=1)
        parallel.flush(max_workers=4)
        expr = Subset(frozenset(["a"]))
        assert serial.evaluate(expr) == parallel.evaluate(expr)
        assert serial.index.shard_record_counts() == parallel.index.shard_record_counts()

    def test_evaluate_detail_merges_delta_with_zero_page_cost(self, pair):
        _, sharded = pair
        sharded.insert([["a", "qq"]])
        expr = Subset(frozenset(["qq"]))
        ids, stats = sharded.evaluate_detail(expr)
        assert ids == sharded.evaluate(expr)
        assert len(ids) == 1
        # The buffered record is memory resident: no shard reported it.
        assert sum(stat.matches for stat in stats) == 0

    def test_limit_offset_equivalence_with_monolith(self, pair):
        mono, sharded = pair
        batch = [["a", "b"], ["b", "c"]]
        mono.insert(batch)
        sharded.insert(batch)
        expr = Subset(frozenset(["b"])).limit(5, offset=2)
        # Both updatable wrappers slice the *sorted* merged stream, so the
        # limited answers agree exactly, delta included.
        assert sharded.evaluate(expr) == mono.evaluate(expr)
