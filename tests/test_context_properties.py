"""Hypothesis properties of the per-context I/O accounting.

The invariant the concurrent read path rests on: every page access is charged
to exactly one :class:`~repro.storage.stats.ReadContext` *and* to the
pool-wide totals with the same sequential/random classification — so the
per-context counts of any set of traversals sum exactly to the pool totals,
for arbitrary datasets, query mixes, interleavings and cache sizes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import InvertedFile, UnorderedBTreeInvertedFile
from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import Equality, Subset, Superset
from repro.storage.stats import ReadContext

ITEMS = list("abcdefgh")

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=5),
    min_size=2,
    max_size=30,
)
query_strategy = st.sets(st.sampled_from(ITEMS), min_size=1, max_size=3)
queries_strategy = st.lists(
    st.tuples(st.sampled_from(["subset", "equality", "superset"]), query_strategy),
    min_size=1,
    max_size=8,
)

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_LEAVES = {"subset": Subset, "equality": Equality, "superset": Superset}


def _run_queries(index, queries) -> list[ReadContext]:
    contexts = []
    for predicate, items in queries:
        cursor = index.execute(_LEAVES[predicate](frozenset(items)))
        cursor.fetch_all()
        contexts.append(cursor.ctx)
    return contexts


class TestContextsSumToPoolTotals:
    @relaxed
    @given(
        transactions_strategy,
        queries_strategy,
        st.sampled_from([4096, 8192, 32 * 1024]),  # 1-page, tiny and paper cache
    )
    def test_oif_contexts_sum_to_totals(self, transactions, queries, cache_bytes):
        dataset = Dataset.from_transactions(transactions)
        index = OrderedInvertedFile(dataset, block_capacity=3, cache_bytes=cache_bytes)
        before = index.stats.snapshot()
        contexts = _run_queries(index, queries)
        total = index.stats.snapshot() - before
        assert sum(ctx.page_reads for ctx in contexts) == total.page_reads
        assert sum(ctx.logical_reads for ctx in contexts) == total.logical_reads
        assert sum(ctx.cache_hits for ctx in contexts) == total.cache_hits
        assert sum(ctx.random_reads for ctx in contexts) == total.random_reads
        assert sum(ctx.sequential_reads for ctx in contexts) == total.sequential_reads
        for ctx in contexts:
            assert ctx.random_reads + ctx.sequential_reads == ctx.page_reads
            assert ctx.cache_hits + ctx.page_reads == ctx.logical_reads

    @relaxed
    @given(transactions_strategy, queries_strategy)
    def test_baseline_contexts_sum_to_totals(self, transactions, queries):
        dataset = Dataset.from_transactions(transactions)
        for index in (
            InvertedFile(dataset),
            UnorderedBTreeInvertedFile(dataset, block_capacity=3),
        ):
            before = index.stats.snapshot()
            contexts = _run_queries(index, queries)
            total = index.stats.snapshot() - before
            assert sum(ctx.page_reads for ctx in contexts) == total.page_reads
            assert sum(ctx.logical_reads for ctx in contexts) == total.logical_reads
