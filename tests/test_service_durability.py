"""Durability through the serving stack: data_dir restarts, checkpoints, metrics."""

from __future__ import annotations

import time

import pytest

from repro.core import Dataset
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceServer
from repro.service.index_manager import IndexManager

from tests.conftest import PAPER_TRANSACTIONS

BASE = [sorted(transaction) for transaction in PAPER_TRANSACTIONS]


@pytest.fixture()
def data_dir(tmp_path) -> str:
    return str(tmp_path / "data")


def serve(data_dir: str, **kwargs) -> ServiceServer:
    """Build (without starting) a durable server; use as a context manager."""
    return ServiceServer(port=0, data_dir=data_dir, fsync="never", **kwargs)


def test_restart_preserves_indexes_and_unflushed_updates(data_dir):
    with serve(data_dir) as server:
        client = ServiceClient(port=server.port)
        client.create_index("demo", transactions=BASE)
        inserted = client.insert("demo", [["a", "fresh"]])["record_ids"]
        client.delete("demo", [1])  # server-side ids start at 1
        answers = {
            q: client.query("demo", "subset", [q])["record_ids"]
            for q in ("a", "b", "fresh")
        }
        client.close()
        # Context exit is a *clean* shutdown: durable entries checkpoint.

    with serve(data_dir) as server:
        assert [info["name"] for info in server.recovered] == ["demo"]
        client = ServiceClient(port=server.port)
        for q, expected in answers.items():
            assert client.query("demo", "subset", [q])["record_ids"] == expected
        # The id space continues past the pre-restart inserts.
        again = client.insert("demo", [["b", "later"]])["record_ids"]
        assert again[0] > inserted[0]
        client.close()


def test_unclean_stop_recovers_from_the_wal(data_dir):
    server = serve(data_dir).start()
    client = ServiceClient(port=server.port)
    client.create_index("demo", transactions=BASE)
    client.insert("demo", [["wal", "a"], ["wal", "b"]])
    expected = client.query("demo", "subset", ["wal"])["record_ids"]
    client.close()
    # Simulate a crash: skip the checkpointing close entirely.
    server.manager.close(checkpoint=False)
    server._owns_manager = False  # the manager is already "dead"
    server.shutdown()

    with serve(data_dir) as reborn:
        [info] = reborn.recovered
        assert info["wal_records_replayed"] >= 1
        client = ServiceClient(port=reborn.port)
        assert client.query("demo", "subset", ["wal"])["record_ids"] == expected
        metrics = client.metrics()
        assert 'repro_wal_records_replayed_total{index="demo"}' in metrics
        client.close()


def test_checkpoint_endpoint_and_gauges(data_dir):
    with serve(data_dir) as server:
        client = ServiceClient(port=server.port)
        client.create_index("demo", transactions=BASE)
        client.insert("demo", [["ckpt", "a"]])
        result = client.checkpoint("demo")
        assert result["generation"] == 1
        assert client.checkpoint("demo").get("skipped") is True
        describe = [d for d in client.indexes() if d["name"] == "demo"][0]
        assert describe["durable"] is True
        assert describe["generation"] == 1
        metrics = client.metrics()
        assert 'repro_checkpoints_total{index="demo",trigger="request"}' in metrics
        assert 'repro_last_checkpoint_age_seconds{index="demo"}' in metrics
        assert 'repro_wal_bytes{index="demo"}' in metrics
        client.close()


def test_checkpoint_on_a_plain_index_is_a_client_error(data_dir, tmp_path):
    with ServiceServer(port=0) as server:  # no data_dir: nothing durable
        client = ServiceClient(port=server.port)
        client.create_index("plain", transactions=BASE)
        with pytest.raises(ServiceError, match="not durable"):
            client.checkpoint("plain")
        client.close()


def test_background_checkpoint_interval(data_dir):
    with serve(data_dir, checkpoint_interval=0.2) as server:
        client = ServiceClient(port=server.port)
        client.create_index("demo", transactions=BASE)
        client.insert("demo", [["tick", "a"]])
        deadline = time.time() + 10.0
        while time.time() < deadline:
            entry = server.manager.get("demo")
            if entry._handle.store.generation >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("the background thread never checkpointed")
        metrics = client.metrics()
        assert 'repro_checkpoints_total{index="demo",trigger="interval"}' in metrics
        client.close()


def test_shutdown_waits_for_inflight_background_checkpoint(data_dir):
    """Teardown must not race a checkpoint already in flight.

    The background daemon may be mid-checkpoint when ``shutdown()`` runs;
    closing the manager (and its WAL handles) under it would tear the store
    down mid-write.  The shutdown join is deliberately unbounded — this test
    blocks the in-flight checkpoint for longer than the old 5-second join
    timeout and asserts shutdown still waited it out.
    """
    import threading

    server = serve(data_dir, checkpoint_interval=0.05)
    finished = threading.Event()
    try:
        client = ServiceClient(port=server.start().port)
        client.create_index("demo", transactions=BASE)
        client.insert("demo", [["slow", "a"]])
        client.close()
        entry = server.manager.get("demo")
        started = threading.Event()
        release = threading.Event()
        real_checkpoint = entry.checkpoint

        def slow_checkpoint(force=False):
            started.set()
            release.wait(timeout=30.0)
            try:
                return real_checkpoint(force=force)
            finally:
                finished.set()

        entry.checkpoint = slow_checkpoint
        assert started.wait(timeout=10.0), "background checkpoint never started"
        # Let the checkpoint outlive the historical join timeout; shutdown
        # (below) must wait for it, not abandon the thread after 5 s.
        threading.Timer(6.0, release.set).start()
    finally:
        server.shutdown()
    assert finished.is_set(), "shutdown returned while a checkpoint was in flight"


def test_drop_removes_the_persisted_directory(data_dir):
    import os

    with serve(data_dir) as server:
        client = ServiceClient(port=server.port)
        client.create_index("demo", transactions=BASE)
        assert os.path.isdir(os.path.join(data_dir, "demo"))
        client.drop_index("demo")
        assert not os.path.exists(os.path.join(data_dir, "demo"))
        client.close()
    with serve(data_dir) as reborn:
        assert reborn.recovered == [], "a dropped index must not resurrect"


def test_sharded_index_round_trips_through_restart(data_dir):
    with serve(data_dir) as server:
        client = ServiceClient(port=server.port)
        client.create_index("sharded", transactions=BASE, shards=3)
        client.insert("sharded", [["shardy", "a"]])
        expected = client.query("sharded", "subset", ["a"])["record_ids"]
        client.close()
        server.manager.close(checkpoint=False)  # crash-style stop
        server._owns_manager = False
    with serve(data_dir) as reborn:
        client = ServiceClient(port=reborn.port)
        describe = [d for d in client.indexes() if d["name"] == "sharded"][0]
        assert describe["shards"] == 3
        assert client.query("sharded", "subset", ["a"])["record_ids"] == expected
        client.close()


def test_rebuild_keeps_durability(data_dir):
    with serve(data_dir) as server:
        client = ServiceClient(port=server.port)
        client.create_index("demo", transactions=BASE)
        client.insert("demo", [["pre", "a"]])
        client.rebuild_index("demo")
        entry = server.manager.get("demo")
        assert entry.is_durable, "rebuild must not shed the WAL facade"
        client.insert("demo", [["post", "b"]])
        expected = {
            q: client.query("demo", "subset", [q])["record_ids"]
            for q in ("pre", "post")
        }
        client.close()
        server.manager.close(checkpoint=False)
        server._owns_manager = False
    with serve(data_dir) as reborn:
        client = ServiceClient(port=reborn.port)
        for q, want in expected.items():
            assert client.query("demo", "subset", [q])["record_ids"] == want
        client.close()


def test_manager_open_resident_conflicts_with_existing_name(data_dir):
    manager = IndexManager(data_dir=data_dir, fsync="never")
    dataset = Dataset.from_transactions(PAPER_TRANSACTIONS, start_id=101)
    manager.create("demo", dataset)
    manager.close()
    clashing = IndexManager(fsync="never")
    clashing.create("demo", dataset)  # plain registration first...
    clashing.data_dir = data_dir
    with pytest.raises(ServiceError, match="already exists"):
        clashing.open_resident()  # ...then recovery must not clobber it
    clashing.close()
