"""Property-based equivalence of sharded and unsharded execution.

Hypothesis generates random small datasets, random boolean expressions over
the three predicates, random shard counts and both partitioning strategies,
and checks that a :class:`~repro.core.shard.ShardedIndex` is observationally
identical to the monolithic OIF:

* full (unlimited) answers match exactly for every expression shape;
* ``limit``/``offset`` cursors yield a valid slice — the right cardinality,
  drawn from the true result set, without duplicates;
* the delta-buffered wrappers agree exactly *including* limits (both slice
  the sorted merged stream) with pending updates, and again after a flush.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Dataset, OrderedInvertedFile
from repro.core.query import And, Equality, Not, Or, Subset, Superset
from repro.core.shard import ShardedIndex
from repro.core.updates import UpdatableOIF, UpdatableShardedOIF

ITEMS = list("abcdefgh")

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    min_size=1,
    max_size=25,
)

items_strategy = st.sets(st.sampled_from(ITEMS + ["zz"]), min_size=1, max_size=3).map(
    frozenset
)

leaf_strategy = st.one_of(
    st.builds(Subset, items_strategy),
    st.builds(Equality, items_strategy),
    st.builds(Superset, items_strategy),
)

expr_strategy = st.recursive(
    leaf_strategy,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        st.builds(Not, children),
    ),
    max_leaves=5,
)

shards_strategy = st.integers(min_value=1, max_value=5)
strategy_strategy = st.sampled_from(["hash", "round_robin"])

relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@relaxed
@given(
    transactions=transactions_strategy,
    expr=expr_strategy,
    num_shards=shards_strategy,
    strategy=strategy_strategy,
)
def test_sharded_execution_matches_unsharded(transactions, expr, num_shards, strategy):
    dataset = Dataset.from_transactions(transactions)
    mono = OrderedInvertedFile(dataset)
    sharded = ShardedIndex(dataset, num_shards, strategy=strategy)
    assert sharded.evaluate(expr) == mono.evaluate(expr)


@relaxed
@given(
    transactions=transactions_strategy,
    expr=expr_strategy,
    num_shards=shards_strategy,
    strategy=strategy_strategy,
    count=st.integers(min_value=0, max_value=6),
    offset=st.integers(min_value=0, max_value=4),
)
def test_sharded_limit_offset_is_a_valid_slice(
    transactions, expr, num_shards, strategy, count, offset
):
    dataset = Dataset.from_transactions(transactions)
    mono = OrderedInvertedFile(dataset)
    sharded = ShardedIndex(dataset, num_shards, strategy=strategy)
    full = mono.evaluate(expr)
    sliced = list(sharded.execute(expr.limit(count, offset=offset)))
    assert len(sliced) == min(count, max(0, len(full) - offset))
    assert set(sliced) <= set(full)
    assert len(set(sliced)) == len(sliced)


@relaxed
@given(
    transactions=transactions_strategy,
    fresh=st.lists(
        st.sets(st.sampled_from(ITEMS + ["new1", "new2"]), min_size=1, max_size=3),
        min_size=0,
        max_size=5,
    ),
    expr=expr_strategy,
    num_shards=shards_strategy,
    strategy=strategy_strategy,
    count=st.integers(min_value=0, max_value=8),
    offset=st.integers(min_value=0, max_value=3),
    flush=st.booleans(),
)
def test_updatable_sharded_matches_monolith_with_pending_deltas(
    transactions, fresh, expr, num_shards, strategy, count, offset, flush
):
    dataset = Dataset.from_transactions(transactions)
    mono = UpdatableOIF(dataset)
    sharded = UpdatableShardedOIF(dataset, num_shards, strategy=strategy)
    if fresh:
        assert mono.insert(fresh) == sharded.insert(fresh)
    if flush:
        mono.flush()
        sharded.flush()
        assert sharded.pending_updates == 0
    assert sharded.evaluate(expr) == mono.evaluate(expr)
    # Both wrappers slice the sorted merged stream, so even limited answers
    # agree exactly, pending deltas included.
    limited = expr.limit(count, offset=offset)
    assert sharded.evaluate(limited) == mono.evaluate(limited)
