"""Property suite for the adaptive posting-representation layer.

Hypothesis-driven guarantees over adversarial, skew-shaped id runs:

* **bitmap ↔ array round trip** — converting a sorted-id column to a
  :class:`DensePostings` bitmap and back is the identity (ids *and* the
  parallel lengths column), as is the procpool wire codec
  ``pack_sorted_ids`` / ``unpack_ids``;
* **kernel equivalence** — every kernel pairing (bitmap×bitmap word-AND,
  bitmap×array membership probe both ways, the window probe, and the
  ``intersect_postings`` dispatcher) returns exactly what the pure
  galloping-merge oracle returns, on every backend (numpy and pure-Python);
* **threshold policy** — ``choose_representation`` is monotone in support
  and consistent with ``dense_threshold``;
* **threshold-crossing flush** — incrementally merging batches into an
  updatable inverted file until lists cross the density threshold (so their
  representation is re-chosen) preserves subset results exactly, including
  page-for-page IO accounting against the array-only configuration;
* **durable round trip** — persisting and reopening an OIF preserves the
  per-item representation tags, and the reopened hybrid index answers
  bit-identically to a reopened array-only one.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import InvertedFile
from repro.compression.postings import PostingColumns, get_backend, set_backend
from repro.core import Dataset
from repro.core.intersect import (
    bitmap_and,
    bitmap_and_dense,
    bitmap_probe,
    bitmap_window_probe,
    intersect_ids,
    intersect_postings,
)
from repro.core.postings import (
    DensePostings,
    REPR_ARRAY,
    REPR_BITMAP,
    choose_representation,
    dense_threshold,
    extract_set_bits,
    pack_sorted_ids,
    to_dense,
    unpack_ids,
)
from repro.storage.stats import ReadContext


@pytest.fixture(params=["auto", "python"])
def backend(request):
    """Run each property on the numpy-gated and the pure-Python backend."""
    previous = get_backend()
    set_backend(request.param)
    yield request.param
    set_backend(previous)


# Sorted strictly-increasing id runs with skewed shapes: dense packs, sparse
# sprawls, and mixtures, including runs far from zero.
def sorted_runs(max_size=300):
    return (
        st.lists(
            st.integers(min_value=0, max_value=4000),
            unique=True,
            max_size=max_size,
        )
        .map(sorted)
    )


@st.composite
def run_pairs(draw):
    """Two overlapping sorted runs with adversarial skew."""
    offset = draw(st.integers(min_value=0, max_value=2000))
    a = [offset + v for v in draw(sorted_runs())]
    b = [offset + v for v in draw(sorted_runs())]
    return a, b


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(run=sorted_runs(), lengths_seed=st.integers(min_value=0, max_value=2**32))
def test_bitmap_array_round_trip(backend, run, lengths_seed):
    lengths = [((lengths_seed >> (i % 13)) % 40) + 1 for i in range(len(run))]
    columns = PostingColumns(array("Q", run), array("Q", lengths))
    dense = DensePostings.from_columns(columns)
    back = dense.to_columns()
    assert list(back.ids) == run
    assert list(back.lengths) == lengths
    assert len(dense) == len(run)
    for record_id in run[:20]:
        assert dense.contains(record_id)
    assert not dense.contains((run[-1] + 7) if run else 7)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(run=sorted_runs())
def test_wire_codec_round_trip(backend, run):
    packed = pack_sorted_ids(array("Q", run))
    if packed is None:
        # The codec declined (too short or too sparse); nothing shipped.
        assert len(run) < 64 or run[-1] - ((run[0] >> 6) << 6) >= 32 * len(run)
    else:
        base, words = packed
        assert list(unpack_ids(base, words)) == run


def test_wire_codec_rejects_unsorted(backend):
    ids = array("Q", [100, 50, 150] + list(range(200, 400)))
    assert pack_sorted_ids(ids) is None
    duplicated = array("Q", sorted(list(range(64, 256)) + [128]))
    assert pack_sorted_ids(duplicated) is None


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(pair=run_pairs())
def test_kernels_match_merge_join_oracle(backend, pair):
    a, b = pair
    oracle = intersect_ids(a, b)
    da = DensePostings.from_sorted_ids(array("Q", a))
    db = DensePostings.from_sorted_ids(array("Q", b))
    assert list(bitmap_and(da, db)) == oracle
    folded = bitmap_and_dense(da, db)
    assert list(extract_set_bits(folded.words, folded.base)) == oracle
    assert list(bitmap_probe(da, array("Q", b))) == oracle
    assert list(bitmap_probe(db, array("Q", a))) == oracle
    out: list[int] = []
    matched = bitmap_window_probe(array("Q", a), 0, len(a), db, out)
    assert out == oracle and matched == bool(oracle)
    ca = PostingColumns(array("Q", a), array("Q", [1] * len(a)))
    assert list(intersect_postings(da, db)) == oracle
    assert list(intersect_postings(da, array("Q", b))) == oracle
    assert list(intersect_postings(ca, db)) == oracle
    assert list(intersect_postings(ca, array("Q", b))) == oracle


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(run=sorted_runs())
def test_to_dense_geometry_guard(backend, run):
    columns = PostingColumns(array("Q", run), array("Q", [1] * len(run)))
    dense = to_dense(columns)
    if dense is None:
        if run:  # declined: the bitmap would outgrow the id column
            nwords = ((run[-1] - ((run[0] >> 6) << 6)) >> 6) + 1
            assert nwords > len(run)
    else:
        assert len(dense.words) <= len(run)
        assert list(dense.ids) == run


@settings(max_examples=100, deadline=None)
@given(
    support=st.integers(min_value=0, max_value=10_000),
    num_records=st.integers(min_value=1, max_value=10_000),
    ratio=st.floats(min_value=1e-4, max_value=1.0),
)
def test_threshold_policy(support, num_records, ratio):
    tag = choose_representation(support, num_records, ratio)
    threshold = dense_threshold(num_records, ratio)
    assert tag == (REPR_BITMAP if 0 < threshold <= support else REPR_ARRAY)
    if support:
        # Monotone: more support never flips bitmap back to array.
        assert choose_representation(support + 1, num_records, ratio) == tag or tag == REPR_ARRAY


# -- threshold-crossing flush ----------------------------------------------------------


@st.composite
def skewed_batches(draw):
    """Initial transactions plus update batches with Zipf-flavoured skew."""
    num_items = draw(st.integers(min_value=4, max_value=10))
    items = [f"i{i:02d}" for i in range(num_items)]

    def transactions(count):
        out = []
        for offset in range(count):
            picks = draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_items - 1),
                    min_size=1,
                    max_size=min(5, num_items),
                    unique=True,
                )
            )
            # Skew: the head item rides in every other transaction, so its
            # list crosses the density threshold first.
            out.append({items[p] for p in picks} | {items[offset % 2]})
        return out

    # The first transaction carries the full vocabulary: merge_records
    # rejects items the build has never seen.
    initial = [set(items)] + transactions(draw(st.integers(min_value=2, max_value=6)))
    batches = [
        transactions(draw(st.integers(min_value=1, max_value=6)))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    return items, initial, batches


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=skewed_batches())
def test_threshold_crossing_flush_preserves_results(backend, data):
    items, initial, batches = data

    def build(posting_repr):
        dataset = Dataset.from_transactions(initial)
        # A tiny dense_ratio makes lists cross the threshold within a couple
        # of batches, exercising the representation re-choice on flush.
        index = InvertedFile(dataset, posting_repr=posting_repr, dense_ratio=0.25)
        return dataset, index

    hybrid_ds, hybrid = build("auto")
    arrays_ds, arrays = build("array")
    for batch in batches:
        hybrid.merge_records(hybrid_ds.extend(batch))
        arrays.merge_records(arrays_ds.extend(batch))
        for item in items:
            query = frozenset([item, items[0]])
            ch, ca = ReadContext(), ReadContext()
            rh = hybrid._probe_subset(query, ch)
            ra = arrays._probe_subset(query, ca)
            assert list(rh) == list(ra)
            assert ch.snapshot() == ca.snapshot()
    # The head item rides in every other transaction plus the vocabulary
    # record: with dense_ratio=0.25 its list must have crossed the threshold.
    assert hybrid.repr_for(items[0]) == REPR_BITMAP
    assert arrays.repr_for(items[0]) == REPR_ARRAY


# -- durable round trip ----------------------------------------------------------------


def test_reopened_oif_preserves_repr_tags(tmp_path, backend):
    import random

    from repro.core.oif import OrderedInvertedFile
    from repro.core.updates import UpdatableOIF
    from repro.durability import durable_env_factory, open_index, persist

    rng = random.Random(13)
    items = [f"i{i:02d}" for i in range(20)]
    # Zipf-flavoured skew: low-index items appear in most transactions.
    transactions = [set(items)] + [
        {item for index, item in enumerate(items) if rng.random() < 1.5 / (index + 1)}
        or {items[0]}
        for _ in range(200)
    ]

    def roundtrip(name, posting_repr):
        directory = str(tmp_path / name)
        dataset = Dataset.from_transactions(transactions)
        handle = UpdatableOIF(
            dataset,
            env_factory=durable_env_factory(4096, 64 * 1024),
            posting_repr=posting_repr,
        )
        persist(directory, handle, options={"posting_repr": posting_repr}, fsync="never").close()
        return open_index(directory)

    hybrid = roundtrip("hybrid", "auto")
    arrays = roundtrip("arrays", "array")
    live = OrderedInvertedFile(Dataset.from_transactions(transactions), posting_repr="auto")
    hybrid_oif, arrays_oif = hybrid.inner.index, arrays.inner.index
    assert hybrid_oif.posting_repr == "auto"
    assert any(hybrid_oif.repr_for(item) == REPR_BITMAP for item in items)
    for item in items:
        assert hybrid_oif.repr_for(item) == live.repr_for(item)
        assert arrays_oif.repr_for(item) == REPR_ARRAY
    for _ in range(25):
        query = set(rng.sample(items, rng.randint(1, 3)))
        for query_type in ("subset", "equality", "superset"):
            assert hybrid.query(query_type, query) == arrays.query(query_type, query)
    hybrid.close()
    arrays.close()
