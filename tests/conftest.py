"""Shared fixtures for the test suite.

The fixtures provide the paper's running example (Figure 1), a couple of
synthetic datasets of different shapes, and helpers for building indexes over
them.  Module-scoped caching keeps the suite fast: indexes are rebuilt only
when a test mutates them (none do — updates go through dedicated wrappers).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    InvertedFile,
    NaiveScanIndex,
    SignatureFile,
    UnorderedBTreeInvertedFile,
)
from repro.core import Dataset, OrderedInvertedFile

# The example relation of Figure 1 (ids 101..118 over items a..j).
PAPER_TRANSACTIONS = [
    {"g", "b", "a", "d"},
    {"a", "e", "b"},
    {"f", "e", "a", "b"},
    {"d", "b", "a"},
    {"a", "b", "f", "c"},
    {"c", "a"},
    {"d", "h"},
    {"b", "a", "f"},
    {"b", "c"},
    {"j", "b", "g"},
    {"a", "c", "b"},
    {"i", "d"},
    {"a"},
    {"a", "d"},
    {"j", "c", "a"},
    {"i", "c"},
    {"a", "c", "h"},
    {"d", "c"},
]


def make_skewed_transactions(
    num_records: int,
    vocabulary: str = "abcdefghijklmnopqrst",
    max_length: int = 6,
    seed: int = 1234,
    skew: float = 0.6,
) -> list[set[str]]:
    """Small skewed random transactions used across the suite."""
    rng = random.Random(seed)
    items = list(vocabulary)
    weights = [(position + 1) ** (-skew) for position in range(len(items))]
    transactions = []
    for _ in range(num_records):
        size = rng.randint(1, max_length)
        transactions.append(set(rng.choices(items, weights=weights, k=size)))
    return transactions


@pytest.fixture(scope="session")
def paper_dataset() -> Dataset:
    """The relation of Figure 1 with the paper's original record ids."""
    return Dataset.from_transactions(PAPER_TRANSACTIONS, start_id=101)


@pytest.fixture(scope="session")
def skewed_dataset() -> Dataset:
    """A 500-record skewed dataset over 20 items."""
    return Dataset.from_transactions(make_skewed_transactions(500))


@pytest.fixture(scope="session")
def larger_dataset() -> Dataset:
    """A 2000-record dataset over a 60-item vocabulary (multi-block lists)."""
    vocabulary = "".join(chr(ord("A") + i) for i in range(26)) + "".join(
        chr(ord("a") + i) for i in range(26)
    ) + "01234567"
    return Dataset.from_transactions(
        make_skewed_transactions(2000, vocabulary=vocabulary, max_length=8, seed=77)
    )


@pytest.fixture(scope="session")
def paper_oif(paper_dataset: Dataset) -> OrderedInvertedFile:
    return OrderedInvertedFile(paper_dataset)


@pytest.fixture(scope="session")
def skewed_oif(skewed_dataset: Dataset) -> OrderedInvertedFile:
    return OrderedInvertedFile(skewed_dataset)


@pytest.fixture(scope="session")
def skewed_oif_no_metadata(skewed_dataset: Dataset) -> OrderedInvertedFile:
    return OrderedInvertedFile(skewed_dataset, use_metadata=False)


@pytest.fixture(scope="session")
def skewed_if(skewed_dataset: Dataset) -> InvertedFile:
    return InvertedFile(skewed_dataset)


@pytest.fixture(scope="session")
def skewed_ubt(skewed_dataset: Dataset) -> UnorderedBTreeInvertedFile:
    return UnorderedBTreeInvertedFile(skewed_dataset)


@pytest.fixture(scope="session")
def skewed_sig(skewed_dataset: Dataset) -> SignatureFile:
    return SignatureFile(skewed_dataset)


@pytest.fixture(scope="session")
def skewed_oracle(skewed_dataset: Dataset) -> NaiveScanIndex:
    return NaiveScanIndex(skewed_dataset)


@pytest.fixture(scope="session")
def paper_oracle(paper_dataset: Dataset) -> NaiveScanIndex:
    return NaiveScanIndex(paper_dataset)


def sample_queries(dataset: Dataset, count: int, max_size: int, seed: int) -> list[frozenset]:
    """Query sets drawn from existing records (the paper's methodology)."""
    rng = random.Random(seed)
    records = list(dataset)
    queries = []
    for _ in range(count):
        record = rng.choice(records)
        size = rng.randint(1, min(max_size, record.length))
        queries.append(frozenset(rng.sample(sorted(record.items, key=str), size)))
    return queries
