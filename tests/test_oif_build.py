"""Tests for Ordered Inverted File construction and structure."""

from __future__ import annotations

import pytest

from repro.core import OrderedInvertedFile
from repro.core.roi import RangeOfInterest
from repro.errors import IndexNotBuiltError, QueryError
from repro.storage import Environment


class TestBuildReport:
    def test_report_counts(self, paper_oif, paper_dataset):
        report = paper_oif.build_report
        assert report is not None
        assert report.num_records == len(paper_dataset)
        assert report.num_items == paper_dataset.domain_size
        # One posting per (record, item) pair minus one per record (metadata).
        assert report.num_postings == paper_dataset.total_postings - len(paper_dataset)
        assert report.postings_saved_by_metadata == len(paper_dataset)
        assert report.num_blocks >= 1
        assert report.index_pages > 0
        assert report.build_seconds >= 0

    def test_no_metadata_stores_all_postings(self, paper_dataset):
        oif = OrderedInvertedFile(paper_dataset, use_metadata=False)
        assert oif.build_report is not None
        assert oif.build_report.num_postings == paper_dataset.total_postings
        assert oif.build_report.postings_saved_by_metadata == 0

    def test_deferred_build(self, paper_dataset):
        oif = OrderedInvertedFile(paper_dataset, build=False)
        with pytest.raises(IndexNotBuiltError):
            _ = oif.metadata
        oif.build()
        assert oif.build_report is not None

    def test_custom_environment_is_used(self, paper_dataset):
        env = Environment(page_size=1024, cache_bytes=8192)
        oif = OrderedInvertedFile(paper_dataset, env=env)
        assert oif.env is env
        assert env.page_file.num_pages > 0


class TestStructure:
    def test_btree_invariants_hold(self, skewed_oif):
        skewed_oif._table.btree.check_invariants()

    def test_blocks_are_grouped_by_item_and_sorted(self, skewed_oif):
        from repro.core.blocks import BlockKey

        previous = None
        for key, _value in skewed_oif._table.cursor(b""):
            decoded = BlockKey.decode(key)
            if previous is not None:
                assert (previous.item_rank, previous.tag, previous.last_id) <= (
                    decoded.item_rank,
                    decoded.tag,
                    decoded.last_id,
                )
            previous = decoded

    def test_block_count_matches_report(self, skewed_oif):
        counted = sum(1 for _ in skewed_oif._table.cursor(b""))
        assert counted == skewed_oif.build_report.num_blocks

    def test_lists_exclude_metadata_region_records(self, paper_oif):
        # The inverted list of the most frequent item must be empty: every
        # record containing it has it as its smallest item.
        whole = RangeOfInterest(lower=(), upper=(paper_oif.domain_size - 1,))
        blocks = list(paper_oif.scan_blocks(0, whole))
        assert blocks == []

    def test_posting_ids_are_increasing_within_a_list(self, skewed_oif):
        whole = RangeOfInterest(lower=(), upper=(skewed_oif.domain_size - 1,))
        for rank in range(skewed_oif.domain_size):
            previous = 0
            for _key, block in skewed_oif.scan_blocks(rank, whole):
                for posting in block.postings():
                    assert posting.record_id > previous
                    previous = posting.record_id

    def test_paper_example_list_of_b_matches_figure5(self, paper_oif):
        # Figure 5: with the metadata table, b's inverted list holds records
        # 2..8 (the records containing b whose smallest item is a).
        rank_b = paper_oif.order.rank_of("b")
        whole = RangeOfInterest(lower=(), upper=(paper_oif.domain_size - 1,))
        ids = [
            posting.record_id
            for _key, block in paper_oif.scan_blocks(rank_b, whole)
            for posting in block.postings()
        ]
        records = {frozenset(paper_oif.ordered.record(i).items) for i in ids}
        # Exactly the records that contain both a and b.
        expected = {
            frozenset(r.items)
            for r in paper_oif.dataset
            if {"a", "b"} <= r.items
        }
        assert records == expected

    def test_posting_lengths_match_record_cardinalities(self, skewed_oif):
        whole = RangeOfInterest(lower=(), upper=(skewed_oif.domain_size - 1,))
        for rank in range(min(skewed_oif.domain_size, 8)):
            for _key, block in skewed_oif.scan_blocks(rank, whole):
                for posting in block.postings():
                    assert posting.length == skewed_oif.ordered.length_of(posting.record_id)

    def test_tags_are_sequence_forms_of_block_last_records(self, skewed_oif):
        whole = RangeOfInterest(lower=(), upper=(skewed_oif.domain_size - 1,))
        for rank in range(min(skewed_oif.domain_size, 6)):
            for key, block in skewed_oif.scan_blocks(rank, whole):
                postings = block.postings()
                assert key.last_id == postings[-1].record_id
                assert key.tag == skewed_oif.ordered.sequence_form_of(key.last_id)

    def test_list_block_count(self, skewed_oif):
        total = sum(
            skewed_oif.list_block_count(item)
            for item in skewed_oif.dataset.vocabulary
        )
        assert total == skewed_oif.build_report.num_blocks

    def test_list_block_count_unknown_item(self, skewed_oif):
        with pytest.raises(QueryError):
            skewed_oif.list_block_count("not-an-item")

    def test_posting_bytes_positive(self, skewed_oif):
        assert skewed_oif.posting_bytes > 0


class TestQueryHelpers:
    def test_query_ranks_known_items(self, paper_oif):
        ranks = paper_oif.query_ranks({"b", "a"})
        assert ranks == (0, 1)

    def test_query_ranks_unknown_item_returns_none(self, paper_oif):
        assert paper_oif.query_ranks({"a", "zzz"}) is None

    def test_to_original_ids(self, paper_oif):
        internal = [1, 2]
        originals = paper_oif.to_original_ids(internal)
        assert all(paper_oif.dataset.has_id(record_id) for record_id in originals)

    def test_empty_query_rejected(self, paper_oif):
        with pytest.raises(QueryError):
            paper_oif.subset_query(set())
        with pytest.raises(QueryError):
            paper_oif.equality_query([])
        with pytest.raises(QueryError):
            paper_oif.superset_query(())

    def test_small_block_capacity_still_correct(self, paper_dataset):
        oif = OrderedInvertedFile(paper_dataset, block_capacity=2)
        assert oif.subset_query({"a", "d"}) == [101, 104, 114]
        assert oif.build_report.num_blocks > OrderedInvertedFile(paper_dataset).build_report.num_blocks
