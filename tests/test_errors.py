"""Tests for the exception hierarchy and how the library surfaces failures."""

from __future__ import annotations

import pytest

from repro import errors
from repro.core import Dataset, OrderedInvertedFile
from repro.errors import (
    BTreeError,
    CompressionError,
    DatasetError,
    QueryError,
    ReproError,
    StorageError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            errors.StorageError,
            errors.PageError,
            errors.BufferPoolError,
            errors.BTreeError,
            errors.DuplicateKeyError,
            errors.KeyNotFoundError,
            errors.HashFileError,
            errors.CompressionError,
            errors.IndexBuildError,
            errors.IndexNotBuiltError,
            errors.QueryError,
            errors.DatasetError,
            errors.WorkloadError,
            errors.ExperimentError,
        ],
    )
    def test_every_error_is_a_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_storage_sub_hierarchy(self):
        assert issubclass(BTreeError, StorageError)
        assert issubclass(errors.DuplicateKeyError, BTreeError)
        assert issubclass(errors.PageError, StorageError)

    def test_catching_the_base_class_is_enough(self):
        with pytest.raises(ReproError):
            Dataset([])
        with pytest.raises(ReproError):
            raise CompressionError("bad stream")


class TestErrorsInPractice:
    def test_query_errors_carry_useful_messages(self, paper_oif):
        with pytest.raises(QueryError) as excinfo:
            paper_oif.subset_query(set())
        assert "non-empty" in str(excinfo.value)

    def test_dataset_errors_name_the_problem(self):
        with pytest.raises(DatasetError) as excinfo:
            Dataset.from_transactions([set()])
        assert "empty" in str(excinfo.value)

    def test_workload_error_for_impossible_size(self, skewed_dataset):
        from repro.workloads import WorkloadGenerator

        generator = WorkloadGenerator(skewed_dataset)
        with pytest.raises(WorkloadError):
            generator.subset_query(10_000)

    def test_index_usage_before_build(self, paper_dataset):
        oif = OrderedInvertedFile(paper_dataset, build=False)
        with pytest.raises(errors.IndexNotBuiltError):
            oif.subset_query({"a"})
