"""Persist / reopen / replay / checkpoint semantics of the durability store."""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Dataset
from repro.core.query.expr import leaf_for
from repro.core.updates import UpdatableOIF, UpdatableShardedOIF
from repro.durability import (
    MANIFEST_NAME,
    DurableIndex,
    durable_env_factory,
    open_index,
    persist,
    read_manifest,
)
from repro.errors import DurabilityError, StorageError

from tests.conftest import PAPER_TRANSACTIONS, make_skewed_transactions

ITEMS = sorted({item for transaction in PAPER_TRANSACTIONS for item in transaction})


def build_durable(directory: str, *, shards: int = 1, **oif_kwargs) -> DurableIndex:
    dataset = Dataset.from_transactions(PAPER_TRANSACTIONS, start_id=101)
    factory = durable_env_factory(4096, 32 * 1024)
    if shards > 1:
        handle = UpdatableShardedOIF(dataset, shards, env_factory=factory, **oif_kwargs)
    else:
        handle = UpdatableOIF(dataset, env_factory=factory, **oif_kwargs)
    return persist(directory, handle, options=oif_kwargs, fsync="never")


def all_answers(handle) -> dict:
    return {
        (query_type, item): tuple(handle.query(query_type, {item}))
        for query_type in ("subset", "equality", "superset")
        for item in ITEMS + ["new1", "new2"]
    }


@pytest.mark.parametrize("shards", [1, 3])
def test_roundtrip_without_source_dataset(tmp_path, shards):
    """open_index() answers queries from the directory alone."""
    directory = str(tmp_path / "idx")
    durable = build_durable(directory, shards=shards)
    durable.insert([{"new1", "a"}, {"new2", "c", "d"}])
    durable.delete([103, 110])
    expected = all_answers(durable)
    durable.close()

    # No checkpoint ran after the updates: everything past generation 0 must
    # come back from the WAL.  The original Dataset object is gone.
    reopened = open_index(directory)
    assert all_answers(reopened) == expected
    assert reopened.pending_updates > 0, "replayed updates live in the delta"
    reopened.close()


@pytest.mark.parametrize("shards", [1, 3])
def test_checkpoint_truncates_wal_and_survives_reopen(tmp_path, shards):
    directory = str(tmp_path / "idx")
    durable = build_durable(directory, shards=shards)
    durable.insert([{"new1", "b"}])
    durable.delete([101])
    expected = all_answers(durable)
    result = durable.checkpoint()
    assert result["generation"] == 1
    assert all(wal.recover().records == [] for wal in durable.store._wals)
    durable.close()

    reopened = open_index(directory)
    assert reopened.store.replayed_records == 0, "checkpointed state needs no replay"
    assert reopened.pending_updates == 0
    assert all_answers(reopened) == expected
    reopened.close()


def test_checkpoint_skips_when_clean(tmp_path):
    durable = build_durable(str(tmp_path / "idx"))
    assert durable.checkpoint().get("skipped") is True
    assert durable.checkpoint(force=True).get("skipped") is None
    durable.close()


def test_old_generation_files_are_swept(tmp_path):
    directory = str(tmp_path / "idx")
    durable = build_durable(directory)
    durable.insert([{"x", "a"}])
    durable.checkpoint()
    names = os.listdir(directory)
    assert "pages-1.db" in names and "state-1.json" in names
    assert "pages-0.db" not in names and "state-0.json" not in names
    durable.close()


def test_page_accounting_equal_live_vs_reopened_on_cold_pool(tmp_path):
    """The paper's page-access counts survive a save/load cycle exactly."""
    directory = str(tmp_path / "idx")
    dataset = Dataset.from_transactions(
        make_skewed_transactions(400), start_id=1
    )
    factory = durable_env_factory(4096, 32 * 1024)
    live = UpdatableOIF(dataset, env_factory=factory)
    durable = persist(directory, live, fsync="never")
    durable.close()
    reopened = open_index(directory)

    expr = leaf_for("subset", frozenset({"a", "b"}))
    live.index.env.drop_cache()
    reopened.index.env.drop_cache()
    live_ids, live_io = live.measured_evaluate(expr)
    reopened_ids, reopened_io = reopened.measured_evaluate(expr)
    assert reopened_ids == live_ids
    assert reopened_io.page_reads == live_io.page_reads
    assert reopened_io.random_reads == live_io.random_reads
    assert reopened_io.sequential_reads == live_io.sequential_reads
    reopened.close()


def test_manifest_version_mismatch_is_a_clear_error(tmp_path):
    directory = str(tmp_path / "idx")
    build_durable(directory).close()
    path = os.path.join(directory, MANIFEST_NAME)
    manifest = json.load(open(path))
    manifest["format_version"] = 99
    json.dump(manifest, open(path, "w"))
    with pytest.raises(StorageError, match="format version 99"):
        open_index(directory)


def test_manifest_wrong_format_name_rejected(tmp_path):
    directory = str(tmp_path / "idx")
    build_durable(directory).close()
    path = os.path.join(directory, MANIFEST_NAME)
    manifest = json.load(open(path))
    manifest["format"] = "some-other-store"
    json.dump(manifest, open(path, "w"))
    with pytest.raises(StorageError, match="format"):
        open_index(directory)


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(DurabilityError, match="manifest"):
        read_manifest(str(tmp_path))


def test_page_size_mismatch_rejected(tmp_path):
    """A page image written with one page size refuses to open with another."""
    directory = str(tmp_path / "idx")
    build_durable(directory).close()
    path = os.path.join(directory, MANIFEST_NAME)
    manifest = json.load(open(path))
    # Lie about the page size: the catalog page's own header catches it.
    manifest["page_size"] = 8192
    json.dump(manifest, open(path, "w"))
    with pytest.raises(StorageError, match="page size"):
        open_index(directory)


def test_persist_refuses_uncataloged_environments(tmp_path):
    dataset = Dataset.from_transactions(PAPER_TRANSACTIONS, start_id=101)
    handle = UpdatableOIF(dataset)  # default in-memory env, no catalog page
    with pytest.raises(DurabilityError, match="catalog"):
        persist(str(tmp_path / "idx"), handle)


def test_persist_refuses_an_existing_directory(tmp_path):
    directory = str(tmp_path / "idx")
    build_durable(directory).close()
    dataset = Dataset.from_transactions(PAPER_TRANSACTIONS, start_id=101)
    handle = UpdatableOIF(dataset, env_factory=durable_env_factory(4096, 32 * 1024))
    with pytest.raises(DurabilityError, match="already holds"):
        persist(directory, handle)


def test_delete_of_max_id_does_not_recycle_ids(tmp_path):
    """next_id persists, so a reopened index never reuses an acked id."""
    directory = str(tmp_path / "idx")
    durable = build_durable(directory)
    [new_id] = durable.insert([{"zz", "a"}])
    durable.delete([new_id])
    durable.checkpoint()
    durable.close()
    reopened = open_index(directory)
    [fresh_id] = reopened.insert([{"yy", "b"}])
    assert fresh_id > new_id, "the deleted max id must not come back"
    reopened.close()


# -- property: WAL replay == in-memory state for any insert/delete interleaving ------

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.lists(
                st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
                min_size=1,
                max_size=3,
            ),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10_000)),
    ),
    max_size=12,
)


def state_of(handle) -> list:
    return sorted(
        (record.record_id, tuple(sorted(record.items)))
        for record in handle.live_dataset()
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=operations, shards=st.sampled_from([1, 2]))
def test_wal_replay_matches_in_memory_state(ops, shards):
    """Replaying the WAL reproduces exactly the pre-crash delta state."""
    with tempfile.TemporaryDirectory() as tmp:
        directory = os.path.join(tmp, "idx")
        durable = build_durable(directory, shards=shards)
        live: list[int] = sorted(durable.dataset.record_ids)
        for op, payload in ops:
            if op == "insert":
                live.extend(durable.insert([frozenset(s) for s in payload]))
            elif live:
                victim = live.pop(payload % len(live))
                durable.delete([victim])
        expected = state_of(durable)
        durable.close()  # no checkpoint: state must come back via the WAL
        reopened = open_index(directory)
        assert state_of(reopened) == expected
        assert reopened._next_id >= durable._next_id
        reopened.close()
