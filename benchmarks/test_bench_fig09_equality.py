"""Figure 9: equality queries on synthetic data (|I|, |D|, |qs| and zipf sweeps).

The paper's headline for equality queries is that the OIF's cost is almost
independent of the database size (the RoI is a single point located through
the B-tree), while the IF must still fetch whole lists.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import figure9
from repro.experiments.figures import DEFAULT_SCALE

from conftest import BENCH_DATASET_CONFIG, build_cached_index, run_workload_once, save_tables


@pytest.fixture(scope="module")
def figure9_tables():
    tables = figure9(DEFAULT_SCALE)
    save_tables("figure9_equality", tables.values())
    return tables


def test_equality_workload_oif(benchmark, figure9_tables, bench_dataset):
    oif = build_cached_index(BENCH_DATASET_CONFIG, "OIF", OrderedInvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(oif, bench_dataset, "equality"),
        rounds=3,
        iterations=1,
    )


def test_equality_workload_if(benchmark, figure9_tables, bench_dataset):
    inverted = build_cached_index(BENCH_DATASET_CONFIG, "IF", InvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(inverted, bench_dataset, "equality"),
        rounds=3,
        iterations=1,
    )


def test_equality_oif_cost_stays_flat(figure9_tables):
    """OIF equality cost barely grows along the |D| sweep; the IF's keeps rising."""
    table = figure9_tables["database"]
    if_series = table.column("IF_pages")
    oif_series = table.column("OIF_pages")
    assert if_series[-1] > if_series[0]
    assert oif_series[-1] <= oif_series[0] * 3
    assert all(oif <= anchor for oif, anchor in zip(oif_series, if_series))
