"""Robustness to skew (Section 5): IF degrades with the Zipf order, the OIF does not.

The paper observes that the two indexes are comparable on uniform data but the
IF's cost quickly deteriorates as the item distribution becomes skewed (about
an order of magnitude for subset/equality, 25-30% for superset), while the OIF
stays essentially flat.  This benchmark regenerates the sweep and times the
subset workload on the most and the least skewed datasets.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache, skew_robustness

from conftest import build_cached_index, run_workload_once, save_tables, scaled

UNIFORM_CONFIG = SyntheticConfig(num_records=scaled(40_000), domain_size=2000, zipf_order=0.0, seed=7)
SKEWED_CONFIG = SyntheticConfig(num_records=scaled(40_000), domain_size=2000, zipf_order=1.0, seed=7)


@pytest.fixture(scope="module")
def skew_table():
    table = skew_robustness(num_records=scaled(40_000), queries_per_size=5)
    save_tables("skew_robustness", [table])
    return table


@pytest.mark.parametrize("config", [UNIFORM_CONFIG, SKEWED_CONFIG], ids=["zipf0", "zipf1"])
@pytest.mark.parametrize("name,factory", [("IF", InvertedFile), ("OIF", OrderedInvertedFile)])
def test_subset_workload_across_skew(benchmark, skew_table, config, name, factory):
    dataset = cache.synthetic_dataset(config)
    index = build_cached_index(config, name, factory, dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(index, dataset, "subset"),
        kwargs={"sizes": (4,), "queries_per_size": 5},
        rounds=3,
        iterations=1,
    )


def test_if_degrades_more_than_oif(skew_table):
    """The IF/OIF gap is wider on skewed data than on uniform data."""
    subset_rows = [row for row in skew_table.rows if row["query_type"] == "subset"]
    uniform = next(row for row in subset_rows if row["zipf"] == 0.0)
    skewed = next(row for row in subset_rows if row["zipf"] == 1.0)
    assert skewed["IF_over_OIF"] >= uniform["IF_over_OIF"] * 0.9
