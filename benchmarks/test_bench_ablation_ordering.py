"""Impact of the OIF ordering (Section 5): OIF vs unordered B-tree vs IF.

The paper isolates the contribution of the lexicographic ordering + metadata
by comparing the OIF against a B-tree over the same blocked inverted lists but
without any record reordering.  This benchmark regenerates that comparison for
subset queries across query sizes (which vary the selectivity) and times the
subset workload on all three structures.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile, UnorderedBTreeInvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import ordering_ablation

from conftest import BENCH_DATASET_CONFIG, build_cached_index, run_workload_once, save_tables, scaled


@pytest.fixture(scope="module")
def ablation_table():
    table = ordering_ablation(num_records=scaled(40_000), queries_per_size=5)
    save_tables("ablation_ordering", [table])
    return table


@pytest.mark.parametrize(
    "name,factory",
    [
        ("IF", InvertedFile),
        ("UBT", UnorderedBTreeInvertedFile),
        ("OIF", OrderedInvertedFile),
    ],
)
def test_subset_workload(benchmark, ablation_table, bench_dataset, name, factory):
    index = build_cached_index(BENCH_DATASET_CONFIG, name, factory, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(index, bench_dataset, "subset"),
        kwargs={"sizes": (2, 3, 4, 6, 8)},
        rounds=3,
        iterations=1,
    )


def test_oif_variants_without_metadata(benchmark, bench_dataset):
    """Extra ablation: the OIF with the metadata table disabled."""
    index = build_cached_index(
        BENCH_DATASET_CONFIG,
        "OIF-no-metadata",
        lambda dataset: OrderedInvertedFile(dataset, use_metadata=False),
        bench_dataset,
    )
    benchmark.pedantic(
        run_workload_once,
        args=(index, bench_dataset, "subset"),
        kwargs={"sizes": (2, 3, 4, 6, 8)},
        rounds=3,
        iterations=1,
    )
