"""Batch updates (Section 4.4 / performance summary): OIF rebuild vs IF append.

The paper inserts 200K records into a 1M-record dataset and reports the OIF's
batch update to be ~3-5x slower per record than the IF's (it must re-sort and
rebuild), both growing linearly with the update size, and concludes the OIF
wins overall whenever queries are not vastly outnumbered by updates.  This
benchmark regenerates the scaled-down table and times the two merge paths.
"""

from __future__ import annotations

import pytest

from repro.core.updates import UpdatableIF, UpdatableOIF
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache, update_tradeoff

from conftest import BENCH_SCALE, save_tables, scaled

# The domain scales with the base size so a smoke-scale base still covers
# (nearly) the whole vocabulary the update batch draws from — the merge path
# rejects postings for items the index has never seen.
_DOMAIN = scaled(2000, floor=50)
BASE_CONFIG = SyntheticConfig(num_records=scaled(20_000), domain_size=_DOMAIN, zipf_order=0.8, seed=7)
BATCH_CONFIG = SyntheticConfig(num_records=scaled(2_000), domain_size=_DOMAIN, zipf_order=0.8, seed=8)


@pytest.fixture(scope="module")
def update_table():
    table = update_tradeoff(
        num_records=scaled(30_000),
        domain_size=_DOMAIN,
        update_fractions=(0.05, 0.1, 0.2),
    )
    save_tables("update_tradeoff", [table])
    return table


@pytest.fixture(scope="module")
def base_dataset():
    return cache.synthetic_dataset(BASE_CONFIG)


@pytest.fixture(scope="module")
def batch_transactions():
    return [set(record.items) for record in cache.synthetic_dataset(BATCH_CONFIG)]


def _merge_into_if(dataset, batch):
    updatable = UpdatableIF(dataset)
    updatable.insert(batch)
    return updatable.flush().merge_seconds


def _merge_into_oif(dataset, batch):
    updatable = UpdatableOIF(dataset)
    updatable.insert(batch)
    return updatable.flush().merge_seconds


def test_if_batch_merge(benchmark, update_table, base_dataset, batch_transactions):
    benchmark.pedantic(
        _merge_into_if, args=(base_dataset, batch_transactions), rounds=2, iterations=1
    )


def test_oif_batch_merge(benchmark, update_table, base_dataset, batch_transactions):
    benchmark.pedantic(
        _merge_into_oif, args=(base_dataset, batch_transactions), rounds=2, iterations=1
    )


@pytest.mark.skipif(BENCH_SCALE < 1, reason="page-signal needs full-size batches")
def test_update_cost_is_roughly_linear(update_table):
    """Merge cost grows monotonically and at most linearly with the batch.

    Wall-clock timings are too noisy for a CI assertion (the OIF rebuild is
    dominated by the base dataset, so its seconds jitter non-monotonically
    across the 1x/2x/4x batches).  Instead this checks the *deterministic*
    buffer-pool page counts charged to each merge (reads + writes from
    ``repro.storage.stats``): as the batch quadruples, pages touched must be
    strictly increasing for both indexes and must not grow faster than the
    batch itself — the IF appends to (mostly pre-existing) lists and the OIF
    rebuild is linear in base + batch, so both stay well inside a 4x envelope.
    """
    rows = update_table.rows
    for column in ("IF_pages", "OIF_pages"):
        pages = [row[column] for row in rows]
        assert all(a < b for a, b in zip(pages, pages[1:])), f"{column} not increasing: {pages}"
        assert pages[0] > 0
        growth = pages[-1] / pages[0]
        assert growth <= 4.0, f"{column} grew {growth:.2f}x on a 4x batch (super-linear)"
    # The paper's headline relation — the OIF merge (re-sort + rebuild) is
    # slower than the IF append — is stable in aggregate at this scale (~2x
    # observed, 3-5x in the paper); assert the mean across batches rather
    # than every row, so one scheduler stall cannot flip the comparison.
    ratios = [row["OIF_over_IF"] for row in rows]
    assert sum(ratios) / len(ratios) > 1.0, f"OIF merge not slower than IF: {ratios}"
