"""Figure 7, row 2 (msnbc): containment queries on the simulated category log.

Reproduces the second row of the paper's Figure 7 — the msnbc dataset has a
tiny vocabulary (17 categories) and a near-uniform item distribution, so every
inverted list is very long; the experiment shows how both indexes behave when
|D| / |I| is huge.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.datasets.msnbc import MsnbcConfig
from repro.experiments import cache, figure7

from conftest import run_workload_once, save_tables, scaled

MSNBC_CONFIG = MsnbcConfig(num_sessions=scaled(40_000), seed=11)


@pytest.fixture(scope="module")
def figure7_msnbc_table():
    table = figure7("msnbc", queries_per_size=5, num_sessions=scaled(40_000), seed=11)
    save_tables("figure7_msnbc", [table])
    return table


@pytest.fixture(scope="module")
def msnbc_dataset():
    return cache.msnbc_dataset(MSNBC_CONFIG)


@pytest.fixture(scope="module")
def msnbc_oif(msnbc_dataset):
    return cache.cached_index(MSNBC_CONFIG, "OIF", lambda: OrderedInvertedFile(msnbc_dataset))


@pytest.fixture(scope="module")
def msnbc_if(msnbc_dataset):
    return cache.cached_index(MSNBC_CONFIG, "IF", lambda: InvertedFile(msnbc_dataset))


@pytest.mark.parametrize("query_type", ["subset", "equality", "superset"])
def test_msnbc_oif_queries(benchmark, figure7_msnbc_table, msnbc_dataset, msnbc_oif, query_type):
    pages = benchmark.pedantic(
        run_workload_once,
        args=(msnbc_oif, msnbc_dataset, query_type),
        kwargs={"sizes": (2, 4, 7)},
        rounds=3,
        iterations=1,
    )
    assert pages >= 0


@pytest.mark.parametrize("query_type", ["subset", "equality", "superset"])
def test_msnbc_if_queries(benchmark, figure7_msnbc_table, msnbc_dataset, msnbc_if, query_type):
    pages = benchmark.pedantic(
        run_workload_once,
        args=(msnbc_if, msnbc_dataset, query_type),
        kwargs={"sizes": (2, 4, 7)},
        rounds=3,
        iterations=1,
    )
    assert pages >= 0


def test_msnbc_oif_beats_if_on_page_accesses(figure7_msnbc_table):
    """The headline qualitative result of Figure 7 row 2."""
    if_pages = [row["IF_pages"] for row in figure7_msnbc_table.rows]
    oif_pages = [row["OIF_pages"] for row in figure7_msnbc_table.rows]
    assert sum(oif_pages) < sum(if_pages)
