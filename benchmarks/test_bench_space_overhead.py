"""Space overhead (Section 5): index size relative to the raw data.

The paper reports the OIF at roughly 35% of the original data versus 22% for
the IF, with the OIF's posting lists themselves marginally (~5%) smaller than
the IF's thanks to the metadata table.  This benchmark regenerates that table
and times the two index builds (the space/maintenance side of the trade-off).
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import space_overhead

from conftest import save_tables, scaled


@pytest.fixture(scope="module")
def space_table():
    table = space_overhead(num_records=scaled(40_000))
    save_tables("space_overhead", [table])
    return table


def test_build_oif(benchmark, space_table, bench_dataset):
    result = benchmark.pedantic(
        lambda: OrderedInvertedFile(bench_dataset), rounds=2, iterations=1
    )
    assert result.build_report is not None


def test_build_if(benchmark, space_table, bench_dataset):
    result = benchmark.pedantic(lambda: InvertedFile(bench_dataset), rounds=2, iterations=1)
    assert result.build_report is not None


def test_space_shape_matches_paper(space_table):
    """OIF larger than IF overall, but its posting lists are not larger."""
    by_index = {row["index"]: row for row in space_table.rows}
    assert by_index["OIF"]["index_bytes"] >= by_index["IF"]["posting_bytes"]
    assert by_index["OIF"]["posting_bytes"] <= by_index["IF"]["posting_bytes"] * 1.05
