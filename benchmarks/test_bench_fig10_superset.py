"""Figure 10: superset queries on synthetic data (|I|, |D|, |qs| and zipf sweeps).

Superset queries allow the least pruning of the three predicates, but the OIF
still outperforms the IF thanks to the per-list Ranges of Interest and the
metadata table (which resolves every record's most frequent item without I/O).
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import figure10
from repro.experiments.figures import DEFAULT_SCALE

from conftest import BENCH_DATASET_CONFIG, build_cached_index, run_workload_once, save_tables


@pytest.fixture(scope="module")
def figure10_tables():
    tables = figure10(DEFAULT_SCALE)
    save_tables("figure10_superset", tables.values())
    return tables


def test_superset_workload_oif(benchmark, figure10_tables, bench_dataset):
    oif = build_cached_index(BENCH_DATASET_CONFIG, "OIF", OrderedInvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(oif, bench_dataset, "superset"),
        rounds=3,
        iterations=1,
    )


def test_superset_workload_if(benchmark, figure10_tables, bench_dataset):
    inverted = build_cached_index(BENCH_DATASET_CONFIG, "IF", InvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(inverted, bench_dataset, "superset"),
        rounds=3,
        iterations=1,
    )


def test_superset_oif_wins_along_database_sweep(figure10_tables):
    """The OIF systematically outperforms the IF as |D| grows (Figure 10, panel 2)."""
    table = figure10_tables["database"]
    if_series = table.column("IF_pages")
    oif_series = table.column("OIF_pages")
    assert oif_series[-1] <= if_series[-1]
