"""Figure 7, row 1 (msweb): containment queries on the simulated web log.

Reproduces the first row of the paper's Figure 7 — mean disk page accesses of
the IF and the OIF for subset / equality / superset queries of size 2..7 over
the (simulated, replicated) msweb dataset — and times the three workloads on
both indexes.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.datasets.msweb import MswebConfig
from repro.experiments import cache, figure7

from conftest import run_workload_once, save_tables, scaled

MSWEB_CONFIG = MswebConfig(num_sessions=scaled(8_000), replicas=3, seed=11)


@pytest.fixture(scope="module")
def figure7_msweb_table():
    table = figure7("msweb", queries_per_size=5, num_sessions=scaled(8_000), replicas=3, seed=11)
    save_tables("figure7_msweb", [table])
    return table


@pytest.fixture(scope="module")
def msweb_dataset():
    return cache.msweb_dataset(MSWEB_CONFIG)


@pytest.fixture(scope="module")
def msweb_oif(msweb_dataset):
    return cache.cached_index(MSWEB_CONFIG, "OIF", lambda: OrderedInvertedFile(msweb_dataset))


@pytest.fixture(scope="module")
def msweb_if(msweb_dataset):
    return cache.cached_index(MSWEB_CONFIG, "IF", lambda: InvertedFile(msweb_dataset))


@pytest.mark.parametrize("query_type", ["subset", "equality", "superset"])
def test_msweb_oif_queries(benchmark, figure7_msweb_table, msweb_dataset, msweb_oif, query_type):
    pages = benchmark.pedantic(
        run_workload_once,
        args=(msweb_oif, msweb_dataset, query_type),
        kwargs={"sizes": (2, 4, 7)},
        rounds=3,
        iterations=1,
    )
    assert pages >= 0


@pytest.mark.parametrize("query_type", ["subset", "equality", "superset"])
def test_msweb_if_queries(benchmark, figure7_msweb_table, msweb_dataset, msweb_if, query_type):
    pages = benchmark.pedantic(
        run_workload_once,
        args=(msweb_if, msweb_dataset, query_type),
        kwargs={"sizes": (2, 4, 7)},
        rounds=3,
        iterations=1,
    )
    assert pages >= 0


def test_msweb_oif_beats_if_on_page_accesses(figure7_msweb_table):
    """The headline qualitative result of Figure 7 row 1."""
    if_pages = [row["IF_pages"] for row in figure7_msweb_table.rows]
    oif_pages = [row["OIF_pages"] for row in figure7_msweb_table.rows]
    assert sum(oif_pages) < sum(if_pages)
