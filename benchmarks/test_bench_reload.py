"""Reload vs rebuild: opening a persisted index must beat re-indexing the data.

The durability layer exists so a restart does not pay the full OIF
construction cost (frequency ranking, record renumbering, posting-block
encoding) again.  ``open_index`` only reads the page images and the catalog
back; this module times both paths on the shared synthetic dataset, writes the
comparison table under ``benchmarks/results/`` and asserts the reload is at
least an order of magnitude faster at full scale.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time

import pytest

from repro.core.query.expr import leaf_for
from repro.core.updates import UpdatableOIF
from repro.datasets.synthetic import SyntheticConfig, item_name
from repro.durability import durable_env_factory, open_index, persist
from repro.experiments import cache

from conftest import BENCH_SCALE, save_tables, scaled

RELOAD_CONFIG = SyntheticConfig(
    num_records=scaled(20_000), domain_size=scaled(2000, floor=50), zipf_order=0.8, seed=7
)
PAGE_SIZE = 4096
CACHE_BYTES = 256 * 1024


def _build(dataset) -> UpdatableOIF:
    return UpdatableOIF(
        dataset, env_factory=durable_env_factory(PAGE_SIZE, CACHE_BYTES)
    )


@pytest.fixture(scope="module")
def reload_timing():
    """Build once, persist once, then time rebuild vs reload."""
    dataset = cache.synthetic_dataset(RELOAD_CONFIG)
    directory = tempfile.mkdtemp(prefix="repro-reload-")
    try:
        start = time.perf_counter()
        handle = _build(dataset)
        build_seconds = time.perf_counter() - start
        durable = persist(directory + "/idx", handle, fsync="never")
        durable.close()

        # Best of three: the first open in a process pays one-off warm-up
        # costs (allocator growth, page-cache priming) that a restarting
        # service would not attribute to the format itself.  Cyclic-GC pauses
        # are excluded for the same reason — they scale with everything else
        # the benchmark session keeps alive, not with the open path.
        reload_seconds = float("inf")
        for _ in range(3):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                reopened = open_index(directory + "/idx")
                reload_seconds = min(reload_seconds, time.perf_counter() - start)
            finally:
                gc.enable()
            # The reopened index answers from the directory alone; spot-check
            # it against the live build before trusting the timing numbers.
            expr = leaf_for("subset", frozenset({item_name(0), item_name(1)}))
            assert reopened.evaluate(expr) == handle.evaluate(expr)
            reopened.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "records": len(dataset),
        "build_seconds": build_seconds,
        "reload_seconds": reload_seconds,
    }


@pytest.fixture(scope="module")
def reload_table(reload_timing):
    from repro.experiments.report import ResultTable

    table = ResultTable(
        title="Cold start: rebuild from dataset vs reload from disk",
        columns=["records", "build_seconds", "reload_seconds", "speedup"],
    )
    speedup = reload_timing["build_seconds"] / max(reload_timing["reload_seconds"], 1e-9)
    table.add_row(
        records=reload_timing["records"],
        build_seconds=reload_timing["build_seconds"],
        reload_seconds=reload_timing["reload_seconds"],
        speedup=speedup,
    )
    table.add_note(
        "build = UpdatableOIF construction (rank, renumber, encode postings); "
        "reload = open_index() on the persisted directory (page images + catalog)."
    )
    save_tables("reload_vs_rebuild", [table])
    return table


def test_reload_benchmark(benchmark, reload_timing):
    """pytest-benchmark series for the reload path alone."""
    dataset = cache.synthetic_dataset(RELOAD_CONFIG)
    directory = tempfile.mkdtemp(prefix="repro-reload-bench-")
    try:
        persist(directory + "/idx", _build(dataset), fsync="never").close()

        def reload_once():
            open_index(directory + "/idx").close()

        benchmark.pedantic(reload_once, rounds=3, iterations=1)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def test_reload_is_at_least_10x_faster_than_rebuild(reload_table):
    [row] = reload_table.rows
    assert row["reload_seconds"] < row["build_seconds"], (
        f"reload ({row['reload_seconds']:.3f}s) should never lose to a full "
        f"rebuild ({row['build_seconds']:.3f}s)"
    )
    if BENCH_SCALE == 1:
        assert row["speedup"] >= 10.0, (
            f"reload is only {row['speedup']:.1f}x faster than rebuild at full "
            "scale; the persistent format is not pulling its weight"
        )
