"""Shard-scaling benchmark: build, query fan-out, early-stop and merge cost.

The partition-aware index trades a per-shard fixed cost (every shard answers
every query) for three wins this benchmark quantifies at 1/2/4/8 shards:

* **build** — each shard sorts and bulk-loads a fraction of the data (the
  super-linear parts of construction shrink; *thread* fan-out is still
  GIL-bound for the CPU parts — the process backend below sidesteps that);
* **pruning preserved** — aggregate data-page reads per query grow far more
  slowly than the shard count: every shard still prunes with its own
  metadata/ROI machinery;
* **early-stop preserved** — a ``limit k`` over the merged cursor reads
  fewer pages than draining either the sharded or the single-shard index;
* **merge cost** — flushing a small delta batch rebuilds only the affected
  shards, beating the monolithic full rebuild wall-clock.

A second sweep compares the two shard *execution backends* at 1/2/4/8
workers: GIL-bound thread fan-out versus the multiprocess backend
(:mod:`repro.core.shard.procpool`), which ships queries to worker
interpreters and returns columnar id buffers.  Results and per-shard page
counts must be bit-identical between backends at every scale; the CPU
speedup assertion additionally needs real cores (``os.cpu_count() >= 4``)
and full-size posting lists.

Small (1 KB) pages keep the page-access signal visible at benchmark scale.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import OrderedInvertedFile, ShardedIndex
from repro.core.query import Subset
from repro.core.shard import ShardProcessPool
from repro.core.updates import UpdatableOIF, UpdatableShardedOIF
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache as build_cache
from repro.experiments.report import ResultTable
from repro.experiments.runner import ExperimentRunner
from repro.workloads.queries import WorkloadGenerator

from conftest import BENCH_SCALE, save_tables, scaled

SHARD_COUNTS = (1, 2, 4, 8)
SHARDING_CONFIG = SyntheticConfig(
    num_records=scaled(20_000), domain_size=500, zipf_order=0.8, seed=7
)
PAGE_SIZE = 1024
LIMIT_K = 10
#: Small delta batch: the per-shard merge should rebuild a *fraction* of the
#: shards, which is exactly the effect the update experiment measures.
UPDATE_BATCH = 4


@pytest.fixture(scope="module")
def dataset():
    return build_cache.synthetic_dataset(SHARDING_CONFIG)


def build_index(dataset, num_shards: int):
    """The single-shard path is the plain OIF; sharded builds fan out."""
    if num_shards == 1:
        return OrderedInvertedFile(dataset, page_size=PAGE_SIZE)
    return ShardedIndex(
        dataset, num_shards, max_workers=num_shards, page_size=PAGE_SIZE
    )


@pytest.fixture(scope="module")
def hot_items(dataset):
    """The most page-expensive frequent items on the single-shard index."""
    index = build_index(dataset, 1)
    vocabulary = dataset.vocabulary
    by_support = sorted(vocabulary, key=vocabulary.support, reverse=True)
    costs = []
    for item in by_support[:10]:
        index.drop_cache()
        result = index.measured_execute(Subset(frozenset([item])))
        costs.append((result.page_accesses, str(item), item))
    costs.sort(reverse=True)
    return [item for _, _, item in costs[:3]]


def run_hot_queries(index, hot_items, limit: "int | None") -> tuple[int, float]:
    """Drain (or limit) the hot items' lists cold; aggregate (pages, seconds)."""
    pages = 0
    started = time.perf_counter()
    for item in hot_items:
        expr = Subset(frozenset([item]))
        if limit is not None:
            expr = expr.limit(limit)
        index.drop_cache()
        pages += index.measured_execute(expr).page_accesses
    return pages, time.perf_counter() - started


@pytest.fixture(scope="module")
def sharding_table(dataset, hot_items):
    generator = WorkloadGenerator(dataset, seed=17)
    workload = generator.workload("subset", (1, 2, 3), 5)
    runner = ExperimentRunner(drop_cache_per_query=True)
    table = ResultTable(
        title=(
            f"Shard scaling over {len(dataset)} records "
            f"({PAGE_SIZE} B pages, limit k={LIMIT_K}, "
            f"update batch={UPDATE_BATCH})"
        ),
        columns=[
            "shards", "build_s", "query_pages", "query_io_ms",
            "hot_full_pages", "hot_limit_pages", "flush_s", "shards_rebuilt",
        ],
    )
    reference_ids = None
    for num_shards in SHARD_COUNTS:
        started = time.perf_counter()
        index = build_index(dataset, num_shards)
        build_seconds = time.perf_counter() - started

        run = runner.run_workload(index, workload)
        overall = run.overall()
        answers = index.evaluate(Subset(frozenset([hot_items[0]])))
        if reference_ids is None:
            reference_ids = answers
        assert answers == reference_ids, "sharding must not change any answer"

        hot_full_pages, _ = run_hot_queries(index, hot_items, limit=None)
        hot_limit_pages, _ = run_hot_queries(index, hot_items, limit=LIMIT_K)

        transactions = [sorted(record.items) for record in list(dataset)[:UPDATE_BATCH]]
        if num_shards == 1:
            updatable = UpdatableOIF(dataset, page_size=PAGE_SIZE)
        else:
            updatable = UpdatableShardedOIF(
                dataset, num_shards, max_workers=num_shards, page_size=PAGE_SIZE
            )
        updatable.insert(transactions)
        started = time.perf_counter()
        if num_shards == 1:
            updatable.flush()
            rebuilt = 1
        else:
            before = [updatable.index.shard_at(i) for i in range(num_shards)]
            updatable.flush()
            rebuilt = sum(
                1
                for i in range(num_shards)
                if updatable.index.shard_at(i) is not before[i]
            )
        flush_seconds = time.perf_counter() - started

        table.add_row(
            shards=num_shards,
            build_s=build_seconds,
            query_pages=overall.mean_page_accesses,
            query_io_ms=overall.mean_io_ms,
            hot_full_pages=hot_full_pages,
            hot_limit_pages=hot_limit_pages,
            flush_s=flush_seconds,
            shards_rebuilt=rebuilt,
        )
    table.add_note(
        "query_pages: mean aggregate data-page reads per subset query (cold cache); "
        "pruning is preserved when it grows sublinearly in the shard count"
    )
    table.add_note(
        "flush_s: merging a small delta batch — per-shard flushes rebuild only "
        "the affected shards (shards_rebuilt) instead of the whole index"
    )
    save_tables("shard_scaling", [table])
    return table


def rows_by_shards(table) -> dict:
    return {row["shards"]: row for row in table.rows}


def test_pruning_is_preserved_across_shards(sharding_table):
    """Aggregate page reads grow sublinearly in the shard count."""
    rows = rows_by_shards(sharding_table)
    base = rows[1]["query_pages"]
    for num_shards in SHARD_COUNTS[1:]:
        assert rows[num_shards]["query_pages"] < num_shards * base


@pytest.mark.skipif(BENCH_SCALE < 1, reason="page-signal needs full-size lists")
def test_limit_early_stop_survives_the_merge(sharding_table):
    """limit-k reads fewer pages than draining either index (criterion).

    Every shard count beats its own full drain; beating the *unsharded* full
    scan additionally requires the per-shard fixed cost (B-tree descent ×
    shard count) to stay below the avoided list pages, which holds while the
    shard count is small relative to ``k``.
    """
    rows = rows_by_shards(sharding_table)
    single_full = rows[1]["hot_full_pages"]
    for num_shards in SHARD_COUNTS[1:]:
        row = rows[num_shards]
        assert row["hot_limit_pages"] < row["hot_full_pages"]
    for num_shards in (2, 4):
        assert rows[num_shards]["hot_limit_pages"] < single_full


@pytest.mark.skipif(BENCH_SCALE < 1, reason="wall-clock is noise at smoke sizes")
def test_per_shard_flush_beats_the_monolithic_rebuild(sharding_table):
    """Merging a small batch rebuilds a fraction of the shards, and faster."""
    rows = rows_by_shards(sharding_table)
    mono = rows[1]["flush_s"]
    for num_shards in (4, 8):
        row = rows[num_shards]
        assert row["shards_rebuilt"] <= min(UPDATE_BATCH, num_shards)
        assert row["flush_s"] < mono


def test_build_at_8_shards(benchmark, dataset, sharding_table):
    benchmark.pedantic(build_index, args=(dataset, 8), rounds=2, iterations=1)


def test_build_single_shard(benchmark, dataset, sharding_table):
    benchmark.pedantic(build_index, args=(dataset, 1), rounds=2, iterations=1)


@pytest.mark.parametrize("num_shards", (1, 4))
def test_hot_limit_queries(benchmark, dataset, hot_items, sharding_table, num_shards):
    index = build_index(dataset, num_shards)
    benchmark.pedantic(
        run_hot_queries, args=(index, hot_items, LIMIT_K), rounds=3, iterations=1
    )


# --- execution-backend sweep: threads vs processes ---------------------------------
#
# The probes drain full posting lists of distinct frequent items with caches
# dropped before every query, so each shard task is dominated by v-byte
# decode — pure Python CPU that thread fan-out cannot parallelize under the
# GIL but worker processes can.

BACKEND_SHARDS = 8
WORKER_COUNTS = (1, 2, 4, 8)
BACKEND_ROUNDS = 3
BACKEND_PROBES = 6
BACKEND_CONFIG = SyntheticConfig(
    num_records=scaled(120_000), domain_size=300, zipf_order=0.8, seed=11
)
#: Cores this process may actually run on — the speedup assertion is
#: meaningless on hosts that cannot physically run 4 workers in parallel.
HOST_CPUS = min(os.cpu_count() or 1, len(os.sched_getaffinity(0)))


@pytest.fixture(scope="module")
def backend_dataset():
    return build_cache.synthetic_dataset(BACKEND_CONFIG)


def backend_probes(dataset):
    """Full drains of the most frequent items, one distinct item per probe
    (shared items would let the decoded-block cache shortcut later probes)."""
    vocabulary = dataset.vocabulary
    ranked = sorted(vocabulary, key=vocabulary.support, reverse=True)
    return [Subset(frozenset([item])) for item in ranked[:BACKEND_PROBES]]


def _cold(index, procpool=None):
    index.drop_cache()
    if procpool is not None:
        procpool.drop_caches()


def run_probe_batch(index, probes, pool=None, procpool=None) -> float:
    """Aggregate fan-out seconds over the batch, caches dropped per probe
    (the drops stay outside the clock: both backends should be timed on the
    same work, not on their cache-reset plumbing)."""
    elapsed = 0.0
    for expr in probes:
        _cold(index, procpool)
        started = time.perf_counter()
        index.fanout_evaluate(expr, pool=pool)
        elapsed += time.perf_counter() - started
    return elapsed


def _stat_key(stats):
    return [
        (s.shard, s.matches, s.page_accesses, s.random_reads, s.sequential_reads)
        for s in stats
    ]


def assert_backends_bit_identical(index, pool, probes) -> int:
    """Ids, per-shard page counts and absorbed IO totals match exactly.

    The check toggles one index between backends (detach -> threads,
    attach -> processes) so both answer from the very same shard layout.
    Returns the batch's aggregate page count for the results table.
    """
    total_pages = 0
    for expr in probes:
        index.detach_process_pool()
        _cold(index)
        t_ids, t_stats = index.fanout_evaluate(expr)
        index.attach_process_pool(pool)
        _cold(index, pool)
        before = index.io_snapshot()
        p_ids, p_stats = index.fanout_evaluate(expr)
        assert list(p_ids) == list(t_ids), "backends must return identical ids"
        assert _stat_key(p_stats) == _stat_key(t_stats), (
            "per-shard page accounting must survive the process boundary"
        )
        delta = index.io_snapshot() - before
        assert delta.page_reads == sum(s.page_accesses for s in p_stats)
        total_pages += sum(s.page_accesses for s in p_stats)
    return total_pages


@pytest.fixture(scope="module")
def backend_table(backend_dataset):
    probes = backend_probes(backend_dataset)
    index = ShardedIndex(
        backend_dataset,
        BACKEND_SHARDS,
        max_workers=BACKEND_SHARDS,
        page_size=PAGE_SIZE,
        catalog_pages=True,
    )
    table = ResultTable(
        title=(
            f"Shard execution backends over {len(backend_dataset)} records "
            f"({BACKEND_SHARDS} shards, {len(probes)} cold hot-item drains "
            f"per batch, best of {BACKEND_ROUNDS})"
        ),
        columns=["backend", "workers", "batch_ms", "speedup_x", "batch_pages", "spawn_s"],
    )

    def add_row(backend, workers, batch_s, pages, spawn_s, serial_s):
        table.add_row(
            backend=backend,
            workers=workers,
            batch_ms=batch_s * 1000.0,
            speedup_x=serial_s / batch_s,
            batch_pages=pages,
            spawn_s=spawn_s,
        )

    timings: dict[tuple[str, int], float] = {}
    pages_seen = set()
    serial_s = None
    for workers in WORKER_COUNTS:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="bench-fanout"
        ) as thread_pool:
            run_probe_batch(index, probes, pool=thread_pool)  # warm-up
            best = min(
                run_probe_batch(index, probes, pool=thread_pool)
                for _ in range(BACKEND_ROUNDS)
            )
        _cold(index)
        _, stats = index.fanout_evaluate(probes[0])
        pages = sum(s.page_accesses for s in stats)
        timings[("threads", workers)] = best
        if serial_s is None:
            serial_s = best
        add_row("threads", workers, best, pages, 0.0, serial_s)
        pages_seen.add(pages)

    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        pool = ShardProcessPool(index, workers)
        index.attach_process_pool(pool)
        spawn_s = time.perf_counter() - started
        try:
            # First touch after spawn loads the page images into the worker
            # interpreters — part of spawn cost, not steady-state query cost.
            run_probe_batch(index, probes, procpool=pool)
            best = min(
                run_probe_batch(index, probes, procpool=pool)
                for _ in range(BACKEND_ROUNDS)
            )
            _cold(index, pool)
            _, stats = index.fanout_evaluate(probes[0])
            pages = sum(s.page_accesses for s in stats)
            if workers == 4:
                assert_backends_bit_identical(index, pool, probes)
        finally:
            index.detach_process_pool()
            pool.close()
        timings[("processes", workers)] = best
        add_row("processes", workers, best, pages, spawn_s, serial_s)
        pages_seen.add(pages)

    assert len(pages_seen) == 1, "every backend/worker config must read the same pages"
    table.add_note(
        f"host: {HOST_CPUS} usable core(s) (os.cpu_count={os.cpu_count()}); "
        "CPU speedup at N workers needs >= N real cores — on a single-core "
        "host both backends serialize and only the IPC overhead is visible"
    )
    table.add_note(
        "speedup_x: relative to threads/1 worker; batch_pages: aggregate "
        "page accesses of the first probe, identical across all configs "
        "(bit-identity is asserted per probe at workers=4)"
    )
    save_tables("shard_backend_scaling", [table])
    return table, timings


def test_backends_stay_bit_identical(backend_table):
    """The equivalence assertions inside the sweep ran (any scale)."""
    table, _ = backend_table
    assert {row["backend"] for row in table.rows} == {"threads", "processes"}


@pytest.mark.skipif(BENCH_SCALE < 1, reason="wall-clock is noise at smoke sizes")
def test_process_overhead_is_bounded(backend_table):
    """Even with no spare cores, columnar IPC keeps the backend competitive."""
    _, timings = backend_table
    assert timings[("processes", 4)] <= timings[("threads", 1)] * 1.75


@pytest.mark.skipif(BENCH_SCALE < 1, reason="CPU signal needs full-size lists")
@pytest.mark.skipif(HOST_CPUS < 4, reason="CPU scaling needs >= 4 usable cores")
def test_process_backend_beats_the_gil(backend_table):
    """>= 2.5x wall-clock at 4 process workers vs threaded fan-out."""
    _, timings = backend_table
    threaded = timings[("threads", 4)]
    assert timings[("processes", 4)] * 2.5 <= threaded
