"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one figure or table of the paper:

* a module-scoped fixture regenerates the experiment's result table(s) at the
  default (scaled-down) size, prints them and writes them under
  ``benchmarks/results/`` so the series survive the pytest capture;
* the benchmark functions time the query workloads underlying that experiment
  on the competing indexes, giving pytest-benchmark comparisons (OIF vs IF vs
  the other baselines).

Run the whole harness with::

    pytest benchmarks/ --benchmark-only

Datasets and indexes are cached process-wide (see ``repro.experiments.cache``),
so the figure benchmarks share their builds within one pytest session.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

import pytest

from repro.core.interfaces import QueryType, SetContainmentIndex
from repro.core.records import Dataset
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache
from repro.experiments.report import ResultTable, render_tables
from repro.experiments.runner import ExperimentRunner
from repro.obs.runmeta import RunRecorder
from repro.workloads.queries import WorkloadGenerator

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_collection_modifyitems(items) -> None:
    """Mark every test in benchmarks/ as ``bench``.

    pytest.ini deselects the marker by default, so `pytest -x -q` runs only
    the fast tier-1 suite; `pytest -m bench` selects these again.  The hook
    receives the whole session's items, so filter to this directory.
    """
    bench_dir = Path(__file__).resolve().parent
    for item in items:
        if item.path is not None and item.path.is_relative_to(bench_dir):
            item.add_marker(pytest.mark.bench)

#: Global size multiplier so CI smoke runs can execute the whole harness at
#: tiny sizes (``REPRO_BENCH_SCALE=0.02 pytest -m bench``) — the point is to
#: catch rot (imports, APIs, table schemas), not to produce meaningful
#: numbers.  Timing-sensitive assertions should gate on ``BENCH_SCALE == 1``.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(num_records: int, floor: int = 500) -> int:
    """Scale a benchmark dataset size by ``REPRO_BENCH_SCALE`` (min ``floor``)."""
    return max(floor, int(num_records * BENCH_SCALE))


#: Dataset used by the per-index timing benchmarks (shared across modules).
BENCH_DATASET_CONFIG = SyntheticConfig(
    num_records=scaled(40_000), domain_size=2000, zipf_order=0.8, seed=7
)

#: Lazy per-process run recorder: the first benchmark that produces output
#: creates ``benchmarks/results/<run>/`` with a ``manifest.json`` (scale,
#: seed, git revision, config) and all subsequent tables and per-query
#: measurements append to that run's ``metrics.jsonl``.
_RUN_RECORDER: "RunRecorder | None" = None


def bench_run_recorder() -> RunRecorder:
    """The process-wide :class:`RunRecorder` for this benchmark session."""
    global _RUN_RECORDER
    if _RUN_RECORDER is None:
        _RUN_RECORDER = RunRecorder(
            RESULTS_DIR,
            scale="full" if BENCH_SCALE == 1 else f"smoke-{BENCH_SCALE:g}",
            seed=BENCH_DATASET_CONFIG.seed,
            config={
                "bench_scale": BENCH_SCALE,
                "num_records": BENCH_DATASET_CONFIG.num_records,
                "domain_size": BENCH_DATASET_CONFIG.domain_size,
                "zipf_order": BENCH_DATASET_CONFIG.zipf_order,
            },
        )
    return _RUN_RECORDER


def save_tables(name: str, tables: Iterable[ResultTable]) -> str:
    """Write the rendered tables to ``benchmarks/results/<name>.txt`` and return the text.

    Scaled-down runs (``REPRO_BENCH_SCALE != 1``) write to ``<name>.smoke.txt``
    (git-ignored) so a smoke pass can never overwrite the tracked full-size
    reference tables with meaningless tiny numbers.  Every table row is also
    appended to the session run's ``metrics.jsonl`` (kind ``table_row``) so
    the series survive as machine-readable records alongside the text.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    tables = list(tables)
    text = render_tables(tables)
    filename = f"{name}.txt" if BENCH_SCALE == 1 else f"{name}.smoke.txt"
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
    recorder = bench_run_recorder()
    for table in tables:
        for row in table.rows:
            recorder.append("table_row", {"table": name, "title": table.title, "row": row})
    print(f"\n{text}\n[saved to benchmarks/results/{filename}]")
    return text


@pytest.fixture(scope="session")
def bench_dataset() -> Dataset:
    """The default synthetic dataset used by the timing benchmarks."""
    return cache.synthetic_dataset(BENCH_DATASET_CONFIG)


def run_workload_once(
    index: SetContainmentIndex,
    dataset: Dataset,
    query_type: QueryType | str,
    sizes: tuple[int, ...] = (2, 4, 8),
    queries_per_size: int = 3,
    seed: int = 17,
) -> float:
    """Run one workload with a cold cache per query; returns mean page accesses.

    This is the unit of work the benchmark functions time: it covers B-tree /
    hash lookups, block decoding and merging — the full query path.
    """
    generator = WorkloadGenerator(dataset, seed=seed)
    workload = generator.workload(query_type, sizes, queries_per_size)
    recorder = bench_run_recorder()
    runner = ExperimentRunner(
        drop_cache_per_query=True,
        metrics_sink=lambda payload: recorder.append("query", payload),
    )
    return runner.run_workload(index, workload).overall().mean_page_accesses


def build_cached_index(dataset_key: object, name: str, factory, dataset: Dataset):
    """Build (or reuse) an index for the timing benchmarks."""
    index = cache.cached_index(dataset_key, name, lambda: factory(dataset))
    index.name = name
    return index
