"""Microbenchmark of the posting hot path: batch decode and array intersection.

Times the columnar batch decoder (:func:`repro.compression.postings.decode_columns`)
against the scalar reference decoder (one ``decode_uint`` call plus one
``Posting`` per entry) on the three buffer shapes the indexes produce —
dense single-byte-gap blocks, mixed-width OIF blocks and whole IF lists —
plus the sorted-array merge join against the old dict-membership
intersection, plus the dense-posting bitmap kernels against the array-only
merge join on Zipf frequent-item lists.  The tables land in
``benchmarks/results/`` (uploaded as a CI artifact by the bench smoke job)
and the full-scale run asserts speedup floors so hot-path regressions fail
CI instead of rotting silently.
"""

from __future__ import annotations

import random
import time
from array import array
from itertools import accumulate

from repro.compression.postings import (
    Posting,
    PostingListCodec,
    decode_columns,
)
from repro.core.intersect import bitmap_and, bitmap_probe, intersect_ids
from repro.core.postings import DensePostings
from repro.experiments.report import ResultTable

from conftest import BENCH_SCALE, save_tables

#: (label, postings, max gap) — single-byte gaps, the mixed 2-byte-gap shape
#: OIF blocks take at scale, and a whole inverted list.
DECODE_SHAPES = (
    ("block_1B_gaps", 128, 100),
    ("block_2B_gaps", 128, 8_000),
    ("if_list_4KB", 2_000, 100),
    ("if_list_40KB", 20_000, 100),
)

_REPEATS = max(200, int(2_000 * min(BENCH_SCALE, 1.0)))


def _posting_buffer(count: int, max_gap: int, seed: int = 11) -> bytes:
    rng = random.Random(seed)
    ids = list(accumulate(rng.randint(1, max_gap) for _ in range(count)))
    postings = [Posting(record_id, rng.randint(1, 9)) for record_id in ids]
    return PostingListCodec(compress=True).encode(postings)


def _best_of(runs: int, fn, *args) -> float:
    """Best wall-clock seconds of ``runs`` timed invocations of ``fn``."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(runs):
            fn(*args)
        best = min(best, time.perf_counter() - start)
    return best / runs


def _measure_decode() -> ResultTable:
    codec = PostingListCodec(compress=True)
    table = ResultTable(
        title="Hot-path microbenchmark: batch (columnar) vs scalar posting decode",
        columns=["shape", "bytes", "postings", "scalar_us", "batch_us", "speedup"],
    )
    for label, count, max_gap in DECODE_SHAPES:
        data = _posting_buffer(count, max_gap)
        repeats = max(30, _REPEATS // max(1, count // 128))
        scalar = _best_of(repeats, codec.decode, data)
        batch = _best_of(repeats, decode_columns, data)
        table.add_row(
            shape=label,
            bytes=len(data),
            postings=count,
            scalar_us=scalar * 1e6,
            batch_us=batch * 1e6,
            speedup=scalar / batch if batch else float("nan"),
        )
    table.add_note(
        "scalar = reference decode_uint loop producing Posting objects; "
        "batch = decode_columns into parallel array('Q') columns"
    )
    return table


def _measure_intersect_pipeline() -> ResultTable:
    """The stage the queries actually replaced: decode one run, intersect it.

    Old pipeline: scalar-decode the buffer into ``Posting`` objects, probe a
    candidate dict per posting, build the survivor dict.  New pipeline:
    batch-decode into columns, merge-join the sorted id arrays.  Measuring
    the stages together is the honest comparison — the dict probe alone is
    cheap, but it can only run after the per-posting decode and allocation
    the columnar path eliminates.
    """
    rng = random.Random(5)
    codec = PostingListCodec(compress=True)
    table = ResultTable(
        title="Hot-path microbenchmark: decode+intersect pipeline, dicts vs columns",
        columns=["shape", "candidates", "postings", "dict_us", "columnar_us", "speedup"],
    )
    for label, cand_size, count, max_gap in (
        ("oif_block", 5_000, 128, 8_000),
        ("if_list", 5_000, 2_000, 100),
    ):
        data = _posting_buffer(count, max_gap, seed=rng.randint(0, 1 << 20))
        run_ids = list(decode_columns(data).ids)
        universe = max(run_ids[-1], cand_size * 4)
        cand = sorted(rng.sample(range(universe), cand_size))
        cand_dict = dict.fromkeys(cand, 1)

        def old_pipeline(data=data, cand_dict=cand_dict):
            return {
                posting.record_id: posting.length
                for posting in codec.decode(data)
                if posting.record_id in cand_dict
            }

        def new_pipeline(data=data, cand=cand):
            return intersect_ids(cand, decode_columns(data).ids)

        assert sorted(old_pipeline()) == new_pipeline()
        repeats = max(50, _REPEATS // max(1, count // 128))
        dict_time = _best_of(repeats, old_pipeline)
        columnar_time = _best_of(repeats, new_pipeline)
        table.add_row(
            shape=label,
            candidates=cand_size,
            postings=count,
            dict_us=dict_time * 1e6,
            columnar_us=columnar_time * 1e6,
            speedup=dict_time / columnar_time if columnar_time else float("nan"),
        )
    return table


def _zipf_run(num_records: int, density: float, rng: random.Random) -> "array[int]":
    """Sorted id run where each record appears with probability ``density``.

    This is exactly the shape a Zipf head item's posting list takes: the
    item occurs in a constant fraction of all transactions, so its list is
    a dense sample of the whole record-id space.
    """
    return array("Q", (rid for rid in range(num_records) if rng.random() < density))


def _measure_bitmap_kernels() -> ResultTable:
    """Bitmap kernels vs the array-only merge join on Zipf frequent items.

    ``dense x dense`` pairs two head-item lists (word-AND + popcount vs
    galloping merge); ``dense x array`` probes a tail-item list against a
    head-item bitmap (O(1) membership per candidate vs merge).  Bit-identity
    with the array-only result is asserted inline — the hybrid path must be
    an accelerator, never an approximation.
    """
    rng = random.Random(7)
    num_records = max(20_000, int(400_000 * min(BENCH_SCALE, 1.0)))
    table = ResultTable(
        title="Hot-path microbenchmark: bitmap kernels vs array merge join (Zipf head items)",
        columns=["pairing", "records", "left", "right", "array_us", "bitmap_us", "speedup"],
    )
    head_a = _zipf_run(num_records, 0.30, rng)
    head_b = _zipf_run(num_records, 0.25, rng)
    tail = _zipf_run(num_records, 1 / 64, rng)
    dense_a = DensePostings.from_sorted_ids(head_a)
    dense_b = DensePostings.from_sorted_ids(head_b)
    for pairing, left, right, array_fn, bitmap_fn in (
        (
            "dense_x_dense",
            head_a,
            head_b,
            lambda: intersect_ids(head_a, head_b),
            lambda: bitmap_and(dense_a, dense_b),
        ),
        (
            "dense_x_array",
            head_a,
            tail,
            lambda: intersect_ids(head_a, tail),
            lambda: bitmap_probe(dense_a, tail),
        ),
    ):
        oracle = array_fn()
        assert list(bitmap_fn()) == list(oracle), f"{pairing}: hybrid result diverged"
        repeats = max(3, int(10 * min(BENCH_SCALE, 1.0)))
        array_time = _best_of(repeats, array_fn)
        bitmap_time = _best_of(repeats, bitmap_fn)
        table.add_row(
            pairing=pairing,
            records=num_records,
            left=len(left),
            right=len(right),
            array_us=array_time * 1e6,
            bitmap_us=bitmap_time * 1e6,
            speedup=array_time / bitmap_time if bitmap_time else float("nan"),
        )
    table.add_note(
        "array = galloping merge join over sorted array('Q') columns; "
        "bitmap = packed-word AND + set-bit extraction / per-candidate bit probe. "
        "Bit-identity with the array path is asserted before timing."
    )
    return table


def test_decode_microbenchmark(capsys):
    decode_table = _measure_decode()
    intersect_table = _measure_intersect_pipeline()
    save_tables("decode_microbench", [decode_table, intersect_table])

    speedups = {row["shape"]: row["speedup"] for row in decode_table.rows}
    # Sanity at any scale: the batch decoder must never lose to the scalar
    # reference on the single-byte fast path.
    assert speedups["block_1B_gaps"] > 1.0
    if BENCH_SCALE == 1:
        # Full-scale regression floors (measured ~4x/~2.5x/~8x/~3x with wide
        # margins; thresholds sit far below the measured values so CI noise
        # does not flap the job).
        assert speedups["block_1B_gaps"] >= 2.0
        assert speedups["block_2B_gaps"] >= 1.5
        assert speedups["if_list_4KB"] >= 2.0
        assert speedups["if_list_40KB"] >= 2.0
        # The combined decode+intersect pipeline must also beat the dict path.
        assert all(row["speedup"] > 1.0 for row in intersect_table.rows)


def test_bitmap_kernel_benchmark(capsys):
    table = _measure_bitmap_kernels()
    save_tables("bitmap_kernels", [table])
    speedups = {row["pairing"]: row["speedup"] for row in table.rows}
    # Sanity at any scale: the word-AND kernel must never lose to the merge.
    assert speedups["dense_x_dense"] > 1.0
    if BENCH_SCALE == 1:
        from repro.compression.postings import numpy_module

        if numpy_module() is not None:
            # Full-scale regression floors (measured ~50x dense x dense and
            # ~40x dense x array on this container; thresholds sit well below
            # the measured values so CI noise does not flap the job).
            assert speedups["dense_x_dense"] >= 5.0
            assert speedups["dense_x_array"] >= 5.0
        else:
            # Pure-Python word loops still beat the merge (~5x / ~3x here),
            # with slacker floors since there is no vectorization to lean on.
            assert speedups["dense_x_dense"] >= 2.0
            assert speedups["dense_x_array"] >= 1.5


def test_hybrid_bit_identity_across_backends():
    """Array-only vs hybrid vs threaded vs multiprocess: one answer.

    The adaptive-representation acceptance bar: at bench scale, every
    execution configuration — single-index array-only, single-index hybrid,
    threaded sharded fan-out and the multiprocess shard backend — must
    return bit-identical result ids for the same frequent-item workload,
    and the hybrid single index must charge exactly the page counts of the
    array-only one.
    """
    from repro.core import Dataset, OrderedInvertedFile
    from repro.core.query import And, Subset, Superset
    from repro.core.shard import ShardProcessPool, ShardedIndex
    from repro.datasets.synthetic import SyntheticConfig, generate_transactions, item_name
    from repro.storage.stats import ReadContext

    config = SyntheticConfig(
        num_records=max(2_000, int(20_000 * min(BENCH_SCALE, 1.0))),
        domain_size=300,
        zipf_order=0.9,
        seed=29,
    )
    transactions = generate_transactions(config)
    dataset = Dataset.from_transactions(transactions)
    array_only = OrderedInvertedFile(dataset, posting_repr="array")
    hybrid = OrderedInvertedFile(dataset, posting_repr="auto")
    threaded = ShardedIndex(dataset, 3, catalog_pages=True)
    procs = ShardedIndex(dataset, 3, catalog_pages=True)
    pool = ShardProcessPool(procs, 2)
    procs.attach_process_pool(pool)
    try:
        head = [item_name(index) for index in range(3)]
        tail = [item_name(index) for index in (50, 120, 250)]
        queries = (
            Subset(frozenset(head[:2])),
            Subset(frozenset([head[0], tail[0]])),
            And((Subset(frozenset([head[1]])), Subset(frozenset(tail[:2])))),
            Superset(frozenset([head[0], head[2], tail[1]])),
        )
        for expr in queries:
            ctx_array, ctx_hybrid = ReadContext(), ReadContext()
            expected = sorted(array_only.execute(expr, ctx=ctx_array))
            assert sorted(hybrid.execute(expr, ctx=ctx_hybrid)) == expected
            assert ctx_hybrid.snapshot() == ctx_array.snapshot(), (
                "hybrid decode changed the paper's page accounting"
            )
            assert sorted(threaded.execute(expr)) == expected
            assert list(procs.execute(expr)) == list(threaded.execute(expr))
    finally:
        pool.close()


def test_decode_benchmark_timing(benchmark):
    data = _posting_buffer(2_000, 100)
    benchmark(decode_columns, data)
