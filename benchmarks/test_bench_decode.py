"""Microbenchmark of the posting hot path: batch decode and array intersection.

Times the columnar batch decoder (:func:`repro.compression.postings.decode_columns`)
against the scalar reference decoder (one ``decode_uint`` call plus one
``Posting`` per entry) on the three buffer shapes the indexes produce —
dense single-byte-gap blocks, mixed-width OIF blocks and whole IF lists —
plus the sorted-array merge join against the old dict-membership
intersection.  The table lands in ``benchmarks/results/`` (uploaded as a CI
artifact by the bench smoke job) and the full-scale run asserts a speedup
floor so hot-path regressions fail CI instead of rotting silently.
"""

from __future__ import annotations

import random
import time
from itertools import accumulate

from repro.compression.postings import (
    Posting,
    PostingListCodec,
    decode_columns,
)
from repro.core.intersect import intersect_ids
from repro.experiments.report import ResultTable

from conftest import BENCH_SCALE, save_tables

#: (label, postings, max gap) — single-byte gaps, the mixed 2-byte-gap shape
#: OIF blocks take at scale, and a whole inverted list.
DECODE_SHAPES = (
    ("block_1B_gaps", 128, 100),
    ("block_2B_gaps", 128, 8_000),
    ("if_list_4KB", 2_000, 100),
    ("if_list_40KB", 20_000, 100),
)

_REPEATS = max(200, int(2_000 * min(BENCH_SCALE, 1.0)))


def _posting_buffer(count: int, max_gap: int, seed: int = 11) -> bytes:
    rng = random.Random(seed)
    ids = list(accumulate(rng.randint(1, max_gap) for _ in range(count)))
    postings = [Posting(record_id, rng.randint(1, 9)) for record_id in ids]
    return PostingListCodec(compress=True).encode(postings)


def _best_of(runs: int, fn, *args) -> float:
    """Best wall-clock seconds of ``runs`` timed invocations of ``fn``."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(runs):
            fn(*args)
        best = min(best, time.perf_counter() - start)
    return best / runs


def _measure_decode() -> ResultTable:
    codec = PostingListCodec(compress=True)
    table = ResultTable(
        title="Hot-path microbenchmark: batch (columnar) vs scalar posting decode",
        columns=["shape", "bytes", "postings", "scalar_us", "batch_us", "speedup"],
    )
    for label, count, max_gap in DECODE_SHAPES:
        data = _posting_buffer(count, max_gap)
        repeats = max(30, _REPEATS // max(1, count // 128))
        scalar = _best_of(repeats, codec.decode, data)
        batch = _best_of(repeats, decode_columns, data)
        table.add_row(
            shape=label,
            bytes=len(data),
            postings=count,
            scalar_us=scalar * 1e6,
            batch_us=batch * 1e6,
            speedup=scalar / batch if batch else float("nan"),
        )
    table.add_note(
        "scalar = reference decode_uint loop producing Posting objects; "
        "batch = decode_columns into parallel array('Q') columns"
    )
    return table


def _measure_intersect_pipeline() -> ResultTable:
    """The stage the queries actually replaced: decode one run, intersect it.

    Old pipeline: scalar-decode the buffer into ``Posting`` objects, probe a
    candidate dict per posting, build the survivor dict.  New pipeline:
    batch-decode into columns, merge-join the sorted id arrays.  Measuring
    the stages together is the honest comparison — the dict probe alone is
    cheap, but it can only run after the per-posting decode and allocation
    the columnar path eliminates.
    """
    rng = random.Random(5)
    codec = PostingListCodec(compress=True)
    table = ResultTable(
        title="Hot-path microbenchmark: decode+intersect pipeline, dicts vs columns",
        columns=["shape", "candidates", "postings", "dict_us", "columnar_us", "speedup"],
    )
    for label, cand_size, count, max_gap in (
        ("oif_block", 5_000, 128, 8_000),
        ("if_list", 5_000, 2_000, 100),
    ):
        data = _posting_buffer(count, max_gap, seed=rng.randint(0, 1 << 20))
        run_ids = list(decode_columns(data).ids)
        universe = max(run_ids[-1], cand_size * 4)
        cand = sorted(rng.sample(range(universe), cand_size))
        cand_dict = dict.fromkeys(cand, 1)

        def old_pipeline(data=data, cand_dict=cand_dict):
            return {
                posting.record_id: posting.length
                for posting in codec.decode(data)
                if posting.record_id in cand_dict
            }

        def new_pipeline(data=data, cand=cand):
            return intersect_ids(cand, decode_columns(data).ids)

        assert sorted(old_pipeline()) == new_pipeline()
        repeats = max(50, _REPEATS // max(1, count // 128))
        dict_time = _best_of(repeats, old_pipeline)
        columnar_time = _best_of(repeats, new_pipeline)
        table.add_row(
            shape=label,
            candidates=cand_size,
            postings=count,
            dict_us=dict_time * 1e6,
            columnar_us=columnar_time * 1e6,
            speedup=dict_time / columnar_time if columnar_time else float("nan"),
        )
    return table


def test_decode_microbenchmark(capsys):
    decode_table = _measure_decode()
    intersect_table = _measure_intersect_pipeline()
    save_tables("decode_microbench", [decode_table, intersect_table])

    speedups = {row["shape"]: row["speedup"] for row in decode_table.rows}
    # Sanity at any scale: the batch decoder must never lose to the scalar
    # reference on the single-byte fast path.
    assert speedups["block_1B_gaps"] > 1.0
    if BENCH_SCALE == 1:
        # Full-scale regression floors (measured ~4x/~2.5x/~8x/~3x with wide
        # margins; thresholds sit far below the measured values so CI noise
        # does not flap the job).
        assert speedups["block_1B_gaps"] >= 2.0
        assert speedups["block_2B_gaps"] >= 1.5
        assert speedups["if_list_4KB"] >= 2.0
        assert speedups["if_list_40KB"] >= 2.0
        # The combined decode+intersect pipeline must also beat the dict path.
        assert all(row["speedup"] > 1.0 for row in intersect_table.rows)


def test_decode_benchmark_timing(benchmark):
    data = _posting_buffer(2_000, 100)
    benchmark(decode_columns, data)
