"""Performance summary (Section 5): average query cost per predicate, IF vs OIF.

The paper's summary reports the average evaluation time over all three
predicates (133 ms for the IF vs 25 ms for the OIF on the 1M-record dataset).
This benchmark regenerates the per-predicate table at the scaled-down size and
times a mixed workload (subset + equality + superset) on both indexes.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import performance_summary

from conftest import BENCH_DATASET_CONFIG, build_cached_index, run_workload_once, save_tables, scaled


@pytest.fixture(scope="module")
def summary_table():
    table = performance_summary(num_records=scaled(40_000))
    save_tables("performance_summary", [table])
    return table


def _mixed_workload(index, dataset):
    total = 0.0
    for query_type in ("subset", "equality", "superset"):
        total += run_workload_once(index, dataset, query_type, sizes=(4,), queries_per_size=5)
    return total


def test_mixed_workload_oif(benchmark, summary_table, bench_dataset):
    oif = build_cached_index(BENCH_DATASET_CONFIG, "OIF", OrderedInvertedFile, bench_dataset)
    benchmark.pedantic(_mixed_workload, args=(oif, bench_dataset), rounds=3, iterations=1)


def test_mixed_workload_if(benchmark, summary_table, bench_dataset):
    inverted = build_cached_index(BENCH_DATASET_CONFIG, "IF", InvertedFile, bench_dataset)
    benchmark.pedantic(_mixed_workload, args=(inverted, bench_dataset), rounds=3, iterations=1)


def test_summary_oif_wins_on_average(summary_table):
    average_row = summary_table.rows[-1]
    assert average_row["OIF_total_ms"] <= average_row["IF_total_ms"]
