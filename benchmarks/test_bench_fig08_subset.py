"""Figure 8: subset queries on synthetic data (|I|, |D|, |qs| and zipf sweeps).

Regenerates all four panels of the paper's Figure 8 at the scaled-down default
size (the |D| sweep keeps the paper's 1:5:10:50 proportions) and times the
subset workload on the classic inverted file and the OIF.
"""

from __future__ import annotations

import pytest

from repro.baselines import InvertedFile
from repro.core import OrderedInvertedFile
from repro.experiments import figure8
from repro.experiments.figures import DEFAULT_SCALE

from conftest import BENCH_DATASET_CONFIG, build_cached_index, run_workload_once, save_tables


@pytest.fixture(scope="module")
def figure8_tables():
    tables = figure8(DEFAULT_SCALE)
    save_tables("figure8_subset", tables.values())
    return tables


def test_subset_workload_oif(benchmark, figure8_tables, bench_dataset):
    oif = build_cached_index(BENCH_DATASET_CONFIG, "OIF", OrderedInvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(oif, bench_dataset, "subset"),
        rounds=3,
        iterations=1,
    )


def test_subset_workload_if(benchmark, figure8_tables, bench_dataset):
    inverted = build_cached_index(BENCH_DATASET_CONFIG, "IF", InvertedFile, bench_dataset)
    benchmark.pedantic(
        run_workload_once,
        args=(inverted, bench_dataset, "subset"),
        rounds=3,
        iterations=1,
    )


def test_subset_scaling_shape(figure8_tables):
    """As |D| grows the IF's cost rises faster than the OIF's (Figure 8, panel 2)."""
    table = figure8_tables["database"]
    if_series = table.column("IF_pages")
    oif_series = table.column("OIF_pages")
    assert if_series[-1] > if_series[0]
    assert (if_series[-1] / max(oif_series[-1], 0.1)) >= (
        if_series[0] / max(oif_series[0], 0.1)
    )
