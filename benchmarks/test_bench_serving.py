"""Serving-path throughput: result cache and worker scaling.

The paper's skewed workloads concentrate traffic on few hot item sets, which
is exactly what the serving layer exploits: an LRU result cache (plus
in-flight dedup) absorbs repeated queries without touching the index.  This
benchmark replays a zipf-skewed subset-query stream — arriving in waves of
concurrent batches, like real traffic — against two resident OIF indexes
through the :class:`~repro.service.executor.QueryExecutor` and compares

* cached vs uncached execution (within a wave identical queries dedup; across
  waves the cache answers repeats), and
* 1 worker vs several workers.

Index builds happen in the benchmark setup, outside the timed region.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache as build_cache
from repro.experiments.report import ResultTable
from repro.service import IndexManager, QueryExecutor, ResultCache

from conftest import save_tables, scaled

SERVING_CONFIG = SyntheticConfig(num_records=scaled(10_000), domain_size=1000, zipf_order=0.8, seed=7)
NUM_QUERIES = 200
WAVES = 4       # the stream arrives as 4 sequential batches of 50
HOT_POOL = 25   # distinct query sets the skewed stream draws from
WORKERS = 4


@pytest.fixture(scope="module")
def dataset():
    return build_cache.synthetic_dataset(SERVING_CONFIG)


@pytest.fixture(scope="module")
def query_stream(dataset) -> list[tuple[str, str, frozenset]]:
    """A zipf-skewed stream of subset queries spread over two indexes."""
    rng = random.Random(99)
    records = list(dataset)
    pool: list[frozenset] = []
    while len(pool) < HOT_POOL:
        record = rng.choice(records)
        if record.length >= 2:
            pool.append(frozenset(rng.sample(sorted(record.items, key=str), 2)))
    weights = [(rank + 1) ** -1.2 for rank in range(HOT_POOL)]
    return [
        (f"shard{n % 2}", "subset", rng.choices(pool, weights=weights, k=1)[0])
        for n in range(NUM_QUERIES)
    ]


def _build_executor(dataset, *, cached: bool, workers: int) -> QueryExecutor:
    cache = ResultCache(capacity=1024) if cached else None
    manager = IndexManager(result_cache=cache)
    for shard in ("shard0", "shard1"):
        manager.create(shard, dataset, kind="oif")
    return QueryExecutor(manager, cache=cache, max_workers=workers)


def _serve_waves(executor: QueryExecutor, query_stream) -> dict:
    """Replay the stream as sequential concurrent waves; returns serving stats."""
    wave_size = len(query_stream) // WAVES
    answered = 0
    start = time.perf_counter()
    for wave in range(WAVES):
        batch = query_stream[wave * wave_size:(wave + 1) * wave_size]
        answered += len(executor.execute_batch(batch))
    elapsed = time.perf_counter() - start
    assert answered == len(query_stream)
    return {
        "seconds": elapsed,
        "qps": answered / elapsed if elapsed else float("inf"),
        "cache_hits": executor.stats.cache_hits,
        "dedup_hits": executor.stats.dedup_hits,
        "executed": executor.stats.executed,
        "page_accesses": executor.stats.page_accesses,
    }


@pytest.fixture(scope="module")
def serving_table(dataset, query_stream):
    table = ResultTable(
        title=(
            f"Serving throughput: {NUM_QUERIES} skewed subset queries "
            f"in {WAVES} waves over 2 resident OIFs"
        ),
        columns=["mode", "workers", "seconds", "qps", "cache_hits", "dedup_hits", "executed"],
    )
    for cached in (False, True):
        for workers in (1, WORKERS):
            with _build_executor(dataset, cached=cached, workers=workers) as executor:
                run = _serve_waves(executor, query_stream)
            table.add_row(
                mode="cached" if cached else "uncached",
                workers=workers,
                seconds=run["seconds"],
                qps=run["qps"],
                cache_hits=run["cache_hits"],
                dedup_hits=run["dedup_hits"],
                executed=run["executed"],
            )
    table.add_note("cached runs answer repeated hot queries from the LRU result cache")
    save_tables("serving_throughput", [table])
    return table


def _bench_serving(benchmark, dataset, query_stream, *, cached: bool, workers: int) -> None:
    executors: list[QueryExecutor] = []

    def setup():
        executor = _build_executor(dataset, cached=cached, workers=workers)
        executors.append(executor)
        return (executor, query_stream), {}

    benchmark.pedantic(_serve_waves, setup=setup, rounds=2, iterations=1)
    for executor in executors:
        executor.shutdown()


def test_serve_uncached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=1)


def test_serve_uncached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=WORKERS)


def test_serve_cached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=1)


def test_serve_cached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=WORKERS)


def test_cache_absorbs_the_hot_tail(serving_table):
    """With a skewed stream in waves, most queries never reach an index."""
    rows = {(row["mode"], row["workers"]): row for row in serving_table.rows}
    cached = rows[("cached", 1)]
    uncached = rows[("uncached", 1)]
    assert cached["cache_hits"] + cached["dedup_hits"] + cached["executed"] == NUM_QUERIES
    # Each distinct (shard, items) pair evaluates at most once.
    assert cached["executed"] <= 2 * HOT_POOL
    assert cached["cache_hits"] > NUM_QUERIES // 2
    assert uncached["cache_hits"] == 0
