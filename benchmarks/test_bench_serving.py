"""Serving-path throughput: result cache and worker scaling.

The paper's skewed workloads concentrate traffic on few hot item sets, which
is exactly what the serving layer exploits: an LRU result cache (plus
in-flight dedup) absorbs repeated queries without touching the index.  This
benchmark replays a zipf-skewed subset-query stream — arriving in waves of
concurrent batches, like real traffic — against two resident OIF indexes
through the :class:`~repro.service.executor.QueryExecutor` and compares

* cached vs uncached execution (within a wave identical queries dedup; across
  waves the cache answers repeats), and
* 1 worker vs several workers.

Index builds happen in the benchmark setup, outside the timed region.
"""

from __future__ import annotations

import itertools
import random
import threading
import time

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.errors import ServiceError, ServiceOverloadedError
from repro.experiments import cache as build_cache
from repro.experiments.report import ResultTable
from repro.service import (
    IndexManager,
    QueryExecutor,
    ResultCache,
    ServiceClient,
    ServiceServer,
)

from conftest import BENCH_SCALE, bench_run_recorder, save_tables, scaled

SERVING_CONFIG = SyntheticConfig(num_records=scaled(10_000), domain_size=1000, zipf_order=0.8, seed=7)
NUM_QUERIES = 200
WAVES = 4       # the stream arrives as 4 sequential batches of 50
HOT_POOL = 25   # distinct query sets the skewed stream draws from
WORKERS = 4


@pytest.fixture(scope="module")
def dataset():
    return build_cache.synthetic_dataset(SERVING_CONFIG)


@pytest.fixture(scope="module")
def query_stream(dataset) -> list[tuple[str, str, frozenset]]:
    """A zipf-skewed stream of subset queries spread over two indexes."""
    rng = random.Random(99)
    records = list(dataset)
    pool: list[frozenset] = []
    while len(pool) < HOT_POOL:
        record = rng.choice(records)
        if record.length >= 2:
            pool.append(frozenset(rng.sample(sorted(record.items, key=str), 2)))
    weights = [(rank + 1) ** -1.2 for rank in range(HOT_POOL)]
    return [
        (f"shard{n % 2}", "subset", rng.choices(pool, weights=weights, k=1)[0])
        for n in range(NUM_QUERIES)
    ]


def _build_executor(dataset, *, cached: bool, workers: int) -> QueryExecutor:
    cache = ResultCache(capacity=1024) if cached else None
    manager = IndexManager(result_cache=cache)
    for shard in ("shard0", "shard1"):
        manager.create(shard, dataset, kind="oif")
    return QueryExecutor(manager, cache=cache, max_workers=workers)


def _serve_waves(executor: QueryExecutor, query_stream) -> dict:
    """Replay the stream as sequential concurrent waves; returns serving stats."""
    wave_size = len(query_stream) // WAVES
    answered = 0
    start = time.perf_counter()
    for wave in range(WAVES):
        batch = query_stream[wave * wave_size:(wave + 1) * wave_size]
        answered += len(executor.execute_batch(batch))
    elapsed = time.perf_counter() - start
    assert answered == len(query_stream)
    return {
        "seconds": elapsed,
        "qps": answered / elapsed if elapsed else float("inf"),
        "cache_hits": executor.stats.cache_hits,
        "dedup_hits": executor.stats.dedup_hits,
        "executed": executor.stats.executed,
        "page_accesses": executor.stats.page_accesses,
    }


@pytest.fixture(scope="module")
def serving_table(dataset, query_stream):
    table = ResultTable(
        title=(
            f"Serving throughput: {NUM_QUERIES} skewed subset queries "
            f"in {WAVES} waves over 2 resident OIFs"
        ),
        columns=["mode", "workers", "seconds", "qps", "cache_hits", "dedup_hits", "executed"],
    )
    for cached in (False, True):
        for workers in (1, WORKERS):
            with _build_executor(dataset, cached=cached, workers=workers) as executor:
                run = _serve_waves(executor, query_stream)
            table.add_row(
                mode="cached" if cached else "uncached",
                workers=workers,
                seconds=run["seconds"],
                qps=run["qps"],
                cache_hits=run["cache_hits"],
                dedup_hits=run["dedup_hits"],
                executed=run["executed"],
            )
    table.add_note("cached runs answer repeated hot queries from the LRU result cache")
    save_tables("serving_throughput", [table])
    return table


def _bench_serving(benchmark, dataset, query_stream, *, cached: bool, workers: int) -> None:
    executors: list[QueryExecutor] = []

    def setup():
        executor = _build_executor(dataset, cached=cached, workers=workers)
        executors.append(executor)
        return (executor, query_stream), {}

    benchmark.pedantic(_serve_waves, setup=setup, rounds=2, iterations=1)
    for executor in executors:
        executor.shutdown()


def test_serve_uncached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=1)


def test_serve_uncached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=WORKERS)


def test_serve_cached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=1)


def test_serve_cached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=WORKERS)


def test_cache_absorbs_the_hot_tail(serving_table):
    """With a skewed stream in waves, most queries never reach an index."""
    rows = {(row["mode"], row["workers"]): row for row in serving_table.rows}
    cached = rows[("cached", 1)]
    uncached = rows[("uncached", 1)]
    assert cached["cache_hits"] + cached["dedup_hits"] + cached["executed"] == NUM_QUERIES
    # Each distinct (shard, items) pair evaluates at most once.
    assert cached["executed"] <= 2 * HOT_POOL
    assert cached["cache_hits"] > NUM_QUERIES // 2
    assert uncached["cache_hits"] == 0


# -- concurrent clients on ONE resident index --------------------------------------
#
# The concurrent-read-path scenario: N client threads hammer the same index
# over HTTP (each thread reuses one keep-alive connection, so the numbers
# measure the server, not TCP setup).  Queries are pairwise distinct, so no
# result-cache hit and no in-flight dedup can mask an evaluation; the index
# is built with an eviction-free buffer pool, so across a whole cold run each
# page misses exactly once and the page-access total is schedule-independent
# — the concurrent totals must equal the serial (1-thread) run exactly.

CONCURRENT_THREADS = (1, 2, 4, 8)
CONCURRENT_QUERIES = 64


@pytest.fixture(scope="module")
def unique_query_stream(dataset) -> list[frozenset]:
    """Pairwise-distinct 2-item subset queries drawn from real records."""
    rng = random.Random(4242)
    records = [record for record in dataset if record.length >= 2]
    pool: set[frozenset] = set()
    while len(pool) < CONCURRENT_QUERIES:
        record = rng.choice(records)
        pool.add(frozenset(rng.sample(sorted(record.items, key=str), 2)))
    return sorted(pool, key=sorted)


def _serve_concurrently(dataset, queries, num_threads: int) -> dict:
    """Fresh server + cold index; N client threads split the unique stream."""
    with ServiceServer(port=0, max_workers=max(CONCURRENT_THREADS)) as server:
        with ServiceClient(host=server.host, port=server.port) as admin:
            admin.create_index(
                "hot",
                transactions=[sorted(record.items, key=str) for record in dataset],
                # Eviction-free pool: page totals become schedule-independent.
                cache_bytes=1 << 22,
            )
            # The build leaves every page resident; start the measured run
            # cold so the queries do real reads (each page then misses
            # exactly once across the run, whoever touches it first).
            server.manager.get("hot").index.drop_cache()
            slices = [queries[n::num_threads] for n in range(num_threads)]
            failures: list[str] = []

            def client_thread(slice_index: int) -> None:
                with ServiceClient(host=server.host, port=server.port) as client:
                    for items in slices[slice_index]:
                        response = client.query("hot", "subset", sorted(items, key=str))
                        if response["cached"] or response["deduplicated"]:
                            failures.append("unique query was answered without evaluating")

            start = time.perf_counter()
            threads = [
                threading.Thread(target=client_thread, args=(n,))
                for n in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            assert failures == []
            serving = admin.stats()["serving"]
    assert serving["executed"] == len(queries)
    return {
        "threads": num_threads,
        "seconds": elapsed,
        "qps": len(queries) / elapsed if elapsed else float("inf"),
        "page_accesses": serving["page_accesses"],
        "random_reads": serving["random_reads"],
        "sequential_reads": serving["sequential_reads"],
    }


@pytest.fixture(scope="module")
def concurrent_table(dataset, unique_query_stream):
    table = ResultTable(
        title=(
            f"Concurrent clients on one resident OIF: {CONCURRENT_QUERIES} distinct "
            f"subset queries over keep-alive HTTP"
        ),
        columns=["threads", "seconds", "qps", "page_accesses", "random_reads", "sequential_reads"],
    )
    for num_threads in CONCURRENT_THREADS:
        table.add_row(**_serve_concurrently(dataset, unique_query_stream, num_threads))
    table.add_note(
        "eviction-free pool: page-access totals are exact and must not depend "
        "on the client-thread count"
    )
    save_tables("serving_concurrent_same_index", [table])
    return table


@pytest.mark.parametrize("num_threads", CONCURRENT_THREADS)
def test_concurrent_page_totals_match_serial(concurrent_table, num_threads):
    """Interleaving N readers must not change what the queries read."""
    rows = {row["threads"]: row for row in concurrent_table.rows}
    serial = rows[1]
    row = rows[num_threads]
    assert row["page_accesses"] == serial["page_accesses"]
    assert row["random_reads"] + row["sequential_reads"] == row["page_accesses"]


def test_concurrent_throughput_recorded(concurrent_table):
    assert {row["threads"] for row in concurrent_table.rows} == set(CONCURRENT_THREADS)
    assert all(row["qps"] > 0 for row in concurrent_table.rows)


# -- open-loop overload harness ----------------------------------------------------
#
# Closed-loop clients (send, wait, send) cannot measure overload: when the
# server slows down they slow down with it, politely hiding the backlog
# ("coordinated omission").  This harness is open-loop — requests fire on a
# Poisson schedule fixed in advance, and every latency is measured from the
# *scheduled* send time, so time a request spends waiting behind a slow
# predecessor counts against the server, exactly as a real caller would
# experience it.
#
# The run: a small bounded server (few workers, bounded admission queue), a
# closed-loop probe to find its saturation throughput, then two open-loop
# replays at 1x and 2x that rate.  At 2x the admission queue must shed the
# excess with 429 + Retry-After while the p99 of the *accepted* requests
# stays within a fixed multiple of the 1x p99 — bounded latency for what is
# served, fast rejection for the rest.

OPEN_LOOP_REQUESTS = 240  # per run (probe, 1x, 2x)
OPEN_LOOP_SENDERS = 16    # open-loop sender threads (each one keep-alive conn)
OVERLOAD_WORKERS = 2      # executor workers on the server under test
OVERLOAD_QUEUE = 8        # admission queue bound
#: Accepted-request p99 at 2x saturation must stay within this multiple of
#: the 1x p99 — the admission queue bounds waiting at (queue + workers)
#: service times, so the ratio is small even when the offered load doubles.
P99_BOUND_MULTIPLE = 10.0


#: Overload queries: superset queries over many *hot* items.  They are
#: deliberately expensive (the index walks every posting list the query
#: covers), so the executor — the resource admission control guards — is the
#: bottleneck rather than HTTP parsing, and they are pairwise distinct, so
#: neither the result cache nor in-flight dedup absorbs the load.
QUERY_ITEMS = 16
HOT_ITEMS = 80


@pytest.fixture(scope="module")
def overload_queries(dataset) -> list[frozenset]:
    rng = random.Random(20260808)
    frequency: dict[str, int] = {}
    for record in dataset:
        for item in record.items:
            frequency[item] = frequency.get(item, 0) + 1
    hot = sorted(frequency, key=frequency.get, reverse=True)[:HOT_ITEMS]
    need = OPEN_LOOP_REQUESTS * 3 + 64
    pool: set[frozenset] = set()
    size = min(QUERY_ITEMS, len(hot))
    while len(pool) < need:
        pool.add(frozenset(rng.sample(hot, size)))
    queries = sorted(pool, key=sorted)
    rng.shuffle(queries)
    return queries


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (NaN when empty)."""
    if not sorted_values:
        return float("nan")
    rank = max(1, min(len(sorted_values), round(q * len(sorted_values) + 0.5)))
    return sorted_values[rank - 1]


#: Saturation-probe senders: enough concurrency to keep every worker busy
#: through client-side turnaround (else the probe underestimates capacity),
#: but no more than the workers + queue slots admission will hold, so the
#: probe itself never sheds.
PROBE_SENDERS = OVERLOAD_WORKERS + OVERLOAD_QUEUE


def _measure_capacity(server, queries) -> float:
    """Closed-loop saturation probe: back-to-back requests at full concurrency.

    The measured rate is the server's drain rate with its pipeline saturated —
    the saturation point the open-loop runs multiply.
    """
    counter = itertools.count()
    done = threading.Barrier(PROBE_SENDERS + 1)

    def sender() -> None:
        with ServiceClient(host=server.host, port=server.port, max_retries=0) as client:
            while True:
                index = next(counter)
                if index >= OPEN_LOOP_REQUESTS:
                    break
                items = sorted(queries[index % len(queries)], key=str)
                client.query("load", "superset", items)
        done.wait()

    start = time.perf_counter()
    threads = [threading.Thread(target=sender) for _ in range(PROBE_SENDERS)]
    for thread in threads:
        thread.start()
    done.wait()
    elapsed = time.perf_counter() - start
    for thread in threads:
        thread.join()
    return OPEN_LOOP_REQUESTS / elapsed if elapsed else float("inf")


def _open_loop_run(server, queries, target_qps: float, seed: int) -> dict:
    """Replay one Poisson-arrival schedule; latency counts from scheduled send."""
    rng = random.Random(seed)
    offsets: list[float] = []
    at = 0.0
    for _ in range(OPEN_LOOP_REQUESTS):
        at += rng.expovariate(target_qps)
        offsets.append(at)

    next_index = itertools.count()
    lock = threading.Lock()
    accepted: list[float] = []      # seconds from scheduled send to response
    retry_hints: list[float] = []   # Retry-After carried by each shed
    tallies = {"errors": 0}
    start = time.perf_counter() + 0.05  # let every sender connect first

    def sender() -> None:
        with ServiceClient(host=server.host, port=server.port, max_retries=0) as client:
            while True:
                index = next(next_index)
                if index >= OPEN_LOOP_REQUESTS:
                    return
                due = start + offsets[index]
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                items = sorted(queries[index % len(queries)], key=str)
                try:
                    client.query("load", "superset", items)
                except ServiceOverloadedError as error:
                    with lock:
                        retry_hints.append(error.retry_after or 0.0)
                except ServiceError:
                    with lock:
                        tallies["errors"] += 1
                else:
                    latency = time.perf_counter() - due
                    with lock:
                        accepted.append(latency)

    threads = [threading.Thread(target=sender) for _ in range(OPEN_LOOP_SENDERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    accepted.sort()
    return {
        "target_qps": round(target_qps, 1),
        "offered": OPEN_LOOP_REQUESTS,
        "accepted": len(accepted),
        "shed": len(retry_hints),
        "errors": tallies["errors"],
        "achieved_qps": round(len(accepted) / elapsed, 1) if elapsed else float("inf"),
        "p50_ms": round(_percentile(accepted, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(accepted, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(accepted, 0.99) * 1000.0, 3),
        "retry_hints": retry_hints,
    }


@pytest.fixture(scope="module")
def overload_table(dataset, overload_queries):
    table = ResultTable(
        title=(
            f"Open-loop overload: {OPEN_LOOP_REQUESTS} Poisson arrivals vs a "
            f"{OVERLOAD_WORKERS}-worker server with queue bound {OVERLOAD_QUEUE}"
        ),
        columns=[
            "run", "target_qps", "offered", "accepted", "shed", "errors",
            "achieved_qps", "p50_ms", "p95_ms", "p99_ms",
        ],
    )
    runs: dict[str, dict] = {}
    with ServiceServer(
        port=0,
        max_workers=OVERLOAD_WORKERS,
        cache_capacity=2,
        max_queue=OVERLOAD_QUEUE,
    ) as server:
        with ServiceClient(host=server.host, port=server.port) as admin:
            admin.create_index(
                "load",
                transactions=[sorted(record.items, key=str) for record in dataset],
                cache_bytes=1 << 22,
            )
            capacity = _measure_capacity(server, overload_queries)
            table.add_row(
                run="probe", target_qps=round(capacity, 1),
                offered=OPEN_LOOP_REQUESTS, accepted=OPEN_LOOP_REQUESTS,
                shed=0, errors=0, achieved_qps=round(capacity, 1),
                p50_ms=None, p95_ms=None, p99_ms=None,
            )
            for label, multiple, seed in (("1x", 1.0, 101), ("2x", 2.0, 202)):
                run = _open_loop_run(server, overload_queries, capacity * multiple, seed=seed)
                runs[label] = run
                table.add_row(run=label, **{
                    key: value for key, value in run.items() if key != "retry_hints"
                })
            admission = admin.stats()["admission"]
    bench_run_recorder().append(
        "admission_snapshot",
        {"saturation_qps": round(capacity, 1), "admission": admission},
    )
    table.add_note(
        "latency measured from the scheduled (open-loop) send time; shed "
        "requests were answered 429 with a Retry-After hint"
    )
    save_tables("serving_overload", [table])
    return runs


def test_overload_accounting(overload_table):
    """Every offered request is accounted for: accepted, shed, or errored."""
    for label in ("1x", "2x"):
        run = overload_table[label]
        assert run["accepted"] + run["shed"] + run["errors"] == OPEN_LOOP_REQUESTS
        assert run["errors"] == 0
        assert run["accepted"] > 0


def test_overload_sheds_excess_with_retry_after(overload_table):
    """At 2x saturation the bounded queue sheds, and every shed carries a hint."""
    if BENCH_SCALE != 1:
        pytest.skip("saturation behaviour is only meaningful at full scale")
    run = overload_table["2x"]
    assert run["shed"] > 0
    assert all(hint > 0 for hint in run["retry_hints"])


def test_overload_p99_stays_bounded(overload_table):
    """Accepted-request p99 at 2x load stays within a fixed multiple of 1x."""
    if BENCH_SCALE != 1:
        pytest.skip("saturation behaviour is only meaningful at full scale")
    p99_1x = overload_table["1x"]["p99_ms"]
    p99_2x = overload_table["2x"]["p99_ms"]
    assert p99_2x <= P99_BOUND_MULTIPLE * max(p99_1x, 1.0)
