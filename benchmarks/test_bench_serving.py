"""Serving-path throughput: result cache and worker scaling.

The paper's skewed workloads concentrate traffic on few hot item sets, which
is exactly what the serving layer exploits: an LRU result cache (plus
in-flight dedup) absorbs repeated queries without touching the index.  This
benchmark replays a zipf-skewed subset-query stream — arriving in waves of
concurrent batches, like real traffic — against two resident OIF indexes
through the :class:`~repro.service.executor.QueryExecutor` and compares

* cached vs uncached execution (within a wave identical queries dedup; across
  waves the cache answers repeats), and
* 1 worker vs several workers.

Index builds happen in the benchmark setup, outside the timed region.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import cache as build_cache
from repro.experiments.report import ResultTable
from repro.service import (
    IndexManager,
    QueryExecutor,
    ResultCache,
    ServiceClient,
    ServiceServer,
)

from conftest import save_tables, scaled

SERVING_CONFIG = SyntheticConfig(num_records=scaled(10_000), domain_size=1000, zipf_order=0.8, seed=7)
NUM_QUERIES = 200
WAVES = 4       # the stream arrives as 4 sequential batches of 50
HOT_POOL = 25   # distinct query sets the skewed stream draws from
WORKERS = 4


@pytest.fixture(scope="module")
def dataset():
    return build_cache.synthetic_dataset(SERVING_CONFIG)


@pytest.fixture(scope="module")
def query_stream(dataset) -> list[tuple[str, str, frozenset]]:
    """A zipf-skewed stream of subset queries spread over two indexes."""
    rng = random.Random(99)
    records = list(dataset)
    pool: list[frozenset] = []
    while len(pool) < HOT_POOL:
        record = rng.choice(records)
        if record.length >= 2:
            pool.append(frozenset(rng.sample(sorted(record.items, key=str), 2)))
    weights = [(rank + 1) ** -1.2 for rank in range(HOT_POOL)]
    return [
        (f"shard{n % 2}", "subset", rng.choices(pool, weights=weights, k=1)[0])
        for n in range(NUM_QUERIES)
    ]


def _build_executor(dataset, *, cached: bool, workers: int) -> QueryExecutor:
    cache = ResultCache(capacity=1024) if cached else None
    manager = IndexManager(result_cache=cache)
    for shard in ("shard0", "shard1"):
        manager.create(shard, dataset, kind="oif")
    return QueryExecutor(manager, cache=cache, max_workers=workers)


def _serve_waves(executor: QueryExecutor, query_stream) -> dict:
    """Replay the stream as sequential concurrent waves; returns serving stats."""
    wave_size = len(query_stream) // WAVES
    answered = 0
    start = time.perf_counter()
    for wave in range(WAVES):
        batch = query_stream[wave * wave_size:(wave + 1) * wave_size]
        answered += len(executor.execute_batch(batch))
    elapsed = time.perf_counter() - start
    assert answered == len(query_stream)
    return {
        "seconds": elapsed,
        "qps": answered / elapsed if elapsed else float("inf"),
        "cache_hits": executor.stats.cache_hits,
        "dedup_hits": executor.stats.dedup_hits,
        "executed": executor.stats.executed,
        "page_accesses": executor.stats.page_accesses,
    }


@pytest.fixture(scope="module")
def serving_table(dataset, query_stream):
    table = ResultTable(
        title=(
            f"Serving throughput: {NUM_QUERIES} skewed subset queries "
            f"in {WAVES} waves over 2 resident OIFs"
        ),
        columns=["mode", "workers", "seconds", "qps", "cache_hits", "dedup_hits", "executed"],
    )
    for cached in (False, True):
        for workers in (1, WORKERS):
            with _build_executor(dataset, cached=cached, workers=workers) as executor:
                run = _serve_waves(executor, query_stream)
            table.add_row(
                mode="cached" if cached else "uncached",
                workers=workers,
                seconds=run["seconds"],
                qps=run["qps"],
                cache_hits=run["cache_hits"],
                dedup_hits=run["dedup_hits"],
                executed=run["executed"],
            )
    table.add_note("cached runs answer repeated hot queries from the LRU result cache")
    save_tables("serving_throughput", [table])
    return table


def _bench_serving(benchmark, dataset, query_stream, *, cached: bool, workers: int) -> None:
    executors: list[QueryExecutor] = []

    def setup():
        executor = _build_executor(dataset, cached=cached, workers=workers)
        executors.append(executor)
        return (executor, query_stream), {}

    benchmark.pedantic(_serve_waves, setup=setup, rounds=2, iterations=1)
    for executor in executors:
        executor.shutdown()


def test_serve_uncached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=1)


def test_serve_uncached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=False, workers=WORKERS)


def test_serve_cached_1_worker(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=1)


def test_serve_cached_n_workers(benchmark, serving_table, dataset, query_stream):
    _bench_serving(benchmark, dataset, query_stream, cached=True, workers=WORKERS)


def test_cache_absorbs_the_hot_tail(serving_table):
    """With a skewed stream in waves, most queries never reach an index."""
    rows = {(row["mode"], row["workers"]): row for row in serving_table.rows}
    cached = rows[("cached", 1)]
    uncached = rows[("uncached", 1)]
    assert cached["cache_hits"] + cached["dedup_hits"] + cached["executed"] == NUM_QUERIES
    # Each distinct (shard, items) pair evaluates at most once.
    assert cached["executed"] <= 2 * HOT_POOL
    assert cached["cache_hits"] > NUM_QUERIES // 2
    assert uncached["cache_hits"] == 0


# -- concurrent clients on ONE resident index --------------------------------------
#
# The concurrent-read-path scenario: N client threads hammer the same index
# over HTTP (each thread reuses one keep-alive connection, so the numbers
# measure the server, not TCP setup).  Queries are pairwise distinct, so no
# result-cache hit and no in-flight dedup can mask an evaluation; the index
# is built with an eviction-free buffer pool, so across a whole cold run each
# page misses exactly once and the page-access total is schedule-independent
# — the concurrent totals must equal the serial (1-thread) run exactly.

CONCURRENT_THREADS = (1, 2, 4, 8)
CONCURRENT_QUERIES = 64


@pytest.fixture(scope="module")
def unique_query_stream(dataset) -> list[frozenset]:
    """Pairwise-distinct 2-item subset queries drawn from real records."""
    rng = random.Random(4242)
    records = [record for record in dataset if record.length >= 2]
    pool: set[frozenset] = set()
    while len(pool) < CONCURRENT_QUERIES:
        record = rng.choice(records)
        pool.add(frozenset(rng.sample(sorted(record.items, key=str), 2)))
    return sorted(pool, key=sorted)


def _serve_concurrently(dataset, queries, num_threads: int) -> dict:
    """Fresh server + cold index; N client threads split the unique stream."""
    with ServiceServer(port=0, max_workers=max(CONCURRENT_THREADS)) as server:
        with ServiceClient(host=server.host, port=server.port) as admin:
            admin.create_index(
                "hot",
                transactions=[sorted(record.items, key=str) for record in dataset],
                # Eviction-free pool: page totals become schedule-independent.
                cache_bytes=1 << 22,
            )
            # The build leaves every page resident; start the measured run
            # cold so the queries do real reads (each page then misses
            # exactly once across the run, whoever touches it first).
            server.manager.get("hot").index.drop_cache()
            slices = [queries[n::num_threads] for n in range(num_threads)]
            failures: list[str] = []

            def client_thread(slice_index: int) -> None:
                with ServiceClient(host=server.host, port=server.port) as client:
                    for items in slices[slice_index]:
                        response = client.query("hot", "subset", sorted(items, key=str))
                        if response["cached"] or response["deduplicated"]:
                            failures.append("unique query was answered without evaluating")

            start = time.perf_counter()
            threads = [
                threading.Thread(target=client_thread, args=(n,))
                for n in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            assert failures == []
            serving = admin.stats()["serving"]
    assert serving["executed"] == len(queries)
    return {
        "threads": num_threads,
        "seconds": elapsed,
        "qps": len(queries) / elapsed if elapsed else float("inf"),
        "page_accesses": serving["page_accesses"],
        "random_reads": serving["random_reads"],
        "sequential_reads": serving["sequential_reads"],
    }


@pytest.fixture(scope="module")
def concurrent_table(dataset, unique_query_stream):
    table = ResultTable(
        title=(
            f"Concurrent clients on one resident OIF: {CONCURRENT_QUERIES} distinct "
            f"subset queries over keep-alive HTTP"
        ),
        columns=["threads", "seconds", "qps", "page_accesses", "random_reads", "sequential_reads"],
    )
    for num_threads in CONCURRENT_THREADS:
        table.add_row(**_serve_concurrently(dataset, unique_query_stream, num_threads))
    table.add_note(
        "eviction-free pool: page-access totals are exact and must not depend "
        "on the client-thread count"
    )
    save_tables("serving_concurrent_same_index", [table])
    return table


@pytest.mark.parametrize("num_threads", CONCURRENT_THREADS)
def test_concurrent_page_totals_match_serial(concurrent_table, num_threads):
    """Interleaving N readers must not change what the queries read."""
    rows = {row["threads"]: row for row in concurrent_table.rows}
    serial = rows[1]
    row = rows[num_threads]
    assert row["page_accesses"] == serial["page_accesses"]
    assert row["random_reads"] + row["sequential_reads"] == row["page_accesses"]


def test_concurrent_throughput_recorded(concurrent_table):
    assert {row["threads"] for row in concurrent_table.rows} == set(CONCURRENT_THREADS)
    assert all(row["qps"] > 0 for row in concurrent_table.rows)
