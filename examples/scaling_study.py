"""Scaling study: how the IF and the OIF behave as the database grows.

Run with::

    python examples/scaling_study.py [base_records]

This is a miniature version of the paper's |D| sweep (Figures 8-10): it keeps
the item domain fixed, grows the number of records, and reports the mean disk
page accesses per subset / equality / superset query for both indexes.  The
key observation of the paper — the IF's cost grows with the list lengths while
the OIF stays almost flat thanks to the Range of Interest — is visible already
at these scaled-down sizes.
"""

from __future__ import annotations

import sys

from repro.core.interfaces import QueryType
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.experiments import ExperimentRunner, if_factory, oif_factory
from repro.workloads import WorkloadGenerator


def main(base_records: int = 5_000) -> None:
    sizes = [base_records, base_records * 2, base_records * 4]
    factories = (if_factory(), oif_factory())

    print(f"{'records':>10} {'predicate':>10} {'IF pages':>10} {'OIF pages':>10} {'speedup':>8}")
    for num_records in sizes:
        dataset = generate_synthetic(
            SyntheticConfig(num_records=num_records, domain_size=1000, zipf_order=0.8)
        )
        generator = WorkloadGenerator(dataset, seed=41)
        runner = ExperimentRunner()
        for query_type in QueryType:
            workload = generator.workload(query_type, sizes=[3], queries_per_size=5)
            results = runner.compare(dataset, workload, factories)
            if_pages = results["IF"].overall().mean_page_accesses
            oif_pages = results["OIF"].overall().mean_page_accesses
            speedup = if_pages / oif_pages if oif_pages else float("inf")
            print(
                f"{num_records:>10} {query_type.value:>10} "
                f"{if_pages:>10.1f} {oif_pages:>10.1f} {speedup:>7.1f}x"
            )
    print(
        "\nAs |D| grows the IF must scan ever longer lists, while the OIF keeps touching\n"
        "only the blocks inside each query's Range of Interest."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5_000)
