"""Market-basket analysis: containment queries over retail transactions.

Run with::

    python examples/market_basket.py

The paper motivates the OIF with exactly this scenario: a supermarket chain
logging billions of baskets over a limited product catalogue, where analysts
ask containment questions such as "which baskets contain both espresso and
oat milk?" (subset), "which baskets consist of exactly this promo bundle?"
(equality) and "which baskets could have been served entirely from the
clearance aisle?" (superset).  The example generates a skewed synthetic
basket log, runs those questions on the classic inverted file and on the OIF,
and prints answers together with the disk page accesses each index needed.
"""

from __future__ import annotations

import random

from repro import InvertedFile, OrderedInvertedFile
from repro.core.records import Dataset

PRODUCTS = [
    # a skewed catalogue: staples first (bought often), specialty items last
    "milk", "bread", "eggs", "bananas", "coffee", "butter", "rice", "pasta",
    "tomatoes", "cheese", "chicken", "yogurt", "apples", "onions", "potatoes",
    "cereal", "orange-juice", "chocolate", "tuna", "olive-oil", "espresso",
    "oat-milk", "quinoa", "saffron", "truffle-oil", "matcha", "kimchi",
    "tempeh", "rye-flour", "star-anise",
]


def simulate_baskets(num_baskets: int, seed: int = 2024) -> Dataset:
    """Generate a skewed basket log: staples appear far more often than specialties."""
    rng = random.Random(seed)
    weights = [1.0 / (position + 1) ** 0.9 for position in range(len(PRODUCTS))]
    baskets = []
    for _ in range(num_baskets):
        basket_size = rng.randint(2, 9)
        basket = set(rng.choices(PRODUCTS, weights=weights, k=basket_size))
        baskets.append(basket)
    return Dataset.from_transactions(baskets)


def main() -> None:
    dataset = simulate_baskets(15_000)
    print(
        f"basket log: {len(dataset)} baskets, {dataset.domain_size} products, "
        f"average basket size {dataset.average_length:.1f}\n"
    )

    oif = OrderedInvertedFile(dataset)
    inverted_file = InvertedFile(dataset)

    analyses = [
        (
            "subset",
            {"espresso", "oat-milk"},
            "baskets containing espresso AND oat milk (cross-sell analysis)",
        ),
        (
            "subset",
            {"milk", "bread", "eggs"},
            "baskets with the breakfast staples",
        ),
        (
            "equality",
            {"pasta", "tomatoes", "olive-oil"},
            "baskets that are exactly the pasta promo bundle",
        ),
        (
            "superset",
            {"milk", "bread", "eggs", "butter", "cheese", "yogurt"},
            "baskets that could be served entirely from the dairy & bakery aisle",
        ),
    ]

    for predicate, items, description in analyses:
        print(f"{description}\n  query: {predicate} {sorted(items)}")
        for index in (inverted_file, oif):
            index.drop_cache()
            result = index.measured_query(predicate, items)
            print(
                f"  {index.name:>3}: {result.cardinality:5d} baskets, "
                f"{result.page_accesses:4d} page accesses, "
                f"{result.io_time_ms:7.2f} ms simulated I/O"
            )
        print()

    print(
        "The OIF answers every analysis with fewer disk page accesses because the\n"
        "frequency ordering confines each query to a small range of its inverted lists."
    )


if __name__ == "__main__":
    main()
