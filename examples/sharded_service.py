"""Sharding end to end: partitioned builds, merged cursors, sharded serving.

Run with::

    python examples/sharded_service.py

The script partitions a synthetic weblog-style dataset over four shards,
shows that the sharded index answers every query exactly like the monolithic
one (while `limit` still stops reading pages early), pushes updates through
the per-shard delta buffers, and finally serves the sharded index over HTTP —
the same thing ``repro-oif serve --data ... --shards 4`` does — with the
per-shard breakdown the ``/stats`` endpoint exposes.
"""

from __future__ import annotations

import random

from repro import Dataset, OrderedInvertedFile, ServiceClient, ServiceServer
from repro.core import ShardedIndex, Subset
from repro.core.updates import UpdatableShardedOIF

PAGES = [f"page{i:02d}" for i in range(40)]


def simulate_sessions(count: int, seed: int = 11) -> Dataset:
    """Zipf-flavoured browsing sessions (hot landing pages, long tail)."""
    rng = random.Random(seed)
    weights = [(rank + 1) ** -0.9 for rank in range(len(PAGES))]
    sessions = []
    for _ in range(count):
        size = rng.randint(1, 6)
        sessions.append(set(rng.choices(PAGES, weights=weights, k=size)))
    return Dataset.from_transactions(sessions)


def sharded_vs_monolithic(dataset: Dataset) -> None:
    # Small pages make the page-access effects visible at this toy scale: a
    # hot item's inverted list spans several pages per shard.
    mono = OrderedInvertedFile(dataset, page_size=512)
    sharded = ShardedIndex(dataset, 4, max_workers=4, page_size=512)
    print(f"shards: {sharded.shard_record_counts()} records "
          f"({sharded.name}, partitioner {sharded.partitioner!r})")

    expr = Subset(frozenset(["page00"]))
    assert sharded.evaluate(expr) == mono.evaluate(expr)
    print(f"subset(page00): {len(sharded.evaluate(expr))} sessions "
          "(identical answers, sharded and monolithic)")

    sharded.drop_cache()
    full = sharded.measured_execute(expr)
    sharded.drop_cache()
    limited = sharded.measured_execute(expr.limit(3))
    print(f"fan-out cursor: full drain {full.page_accesses} pages, "
          f"limit 3 only {limited.page_accesses} pages — the merge pulls just "
          "the ids it yields, so shards beyond the slice are never touched")
    print("fan-out plan:\n" + sharded.explain(expr.limit(3)))


def per_shard_updates(dataset: Dataset) -> None:
    updatable = UpdatableShardedOIF(dataset, 4, max_workers=4)
    updatable.insert([["page00", "page99"], ["page99"]])
    print(f"\npending per shard after 2 inserts: {updatable.pending_per_shard()}")
    fresh = updatable.evaluate(Subset(frozenset(["page99"])))
    print(f"new sessions visible before any flush: {fresh}")
    report = updatable.flush()
    print(f"flush rebuilt only the affected shards: {report.records_merged} records "
          f"merged in {report.merge_seconds * 1000:.1f} ms "
          f"({report.page_writes} page writes)")


def sharded_serving(dataset: Dataset) -> None:
    with ServiceServer(port=0, max_workers=4) as server:
        client = ServiceClient(host=server.host, port=server.port)
        description = client.create_index(
            "web",
            transactions=[sorted(record.items) for record in dataset],
            shards=4,
        )
        print(f"\nserving index 'web' over {description['shards']} shards "
              f"({description['shard_records']} records per shard)")
        response = client.query("web", "subset", ["page00", "page01"])
        print(f"HTTP query: {response['cardinality']} sessions, "
              f"{response['page_accesses']} pages, per-shard breakdown:")
        for entry in response["shards"]:
            print(f"  shard {entry['shard']}: {entry['matches']} matches, "
                  f"{entry['page_accesses']} pages, {entry['elapsed_ms']} ms")
        breakdown = client.stats()["serving"]["per_index_shards"]["web"]
        print(f"/stats per-shard slots: {sorted(breakdown)}")


def main() -> None:
    dataset = simulate_sessions(3000)
    sharded_vs_monolithic(dataset)
    per_shard_updates(dataset)
    sharded_serving(dataset)


if __name__ == "__main__":
    main()
