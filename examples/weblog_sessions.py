"""Web-log session analysis: the paper's msweb scenario end to end.

Run with::

    python examples/weblog_sessions.py

The paper's running example treats each record as a user session on a web
portal and each item as a visited area.  Typical analyst questions map to the
three containment predicates:

* "Which users visited both the download area and the support area?" — subset;
* "Which sessions consist of exactly the home page and the search page?" — equality;
* "Which users limited their visit to the main and downloads sections?" — superset.

The example builds the simulated msweb log, answers those questions with the
OIF and the classic inverted file, and also demonstrates the batch-update
path: a new day of sessions is buffered in the memory-resident delta index and
later merged.
"""

from __future__ import annotations

from repro import InvertedFile, OrderedInvertedFile
from repro.core.updates import UpdatableOIF
from repro.datasets import MswebConfig, generate_msweb
from repro.datasets.msweb import area_name


def main() -> None:
    config = MswebConfig(num_sessions=10_000, replicas=2, seed=3)
    sessions = generate_msweb(config)
    print(
        f"web log: {len(sessions)} sessions over {sessions.domain_size} areas, "
        f"average session visits {sessions.average_length:.2f} areas\n"
    )

    oif = OrderedInvertedFile(sessions)
    inverted_file = InvertedFile(sessions)

    # The most popular areas get the smallest ranks under the frequency order.
    popular = [oif.order.item_at(rank) for rank in range(4)]
    niche = [oif.order.item_at(oif.domain_size - 1 - offset) for offset in range(2)]
    print(f"most visited areas: {popular}")
    print(f"rarely visited areas: {niche}\n")

    questions = [
        ("subset", {popular[0], popular[2]}, "sessions visiting two popular areas"),
        ("subset", {popular[0], niche[0]}, "sessions mixing a popular and a niche area"),
        ("equality", {popular[0], popular[1]}, "sessions that saw exactly the two top areas"),
        (
            "superset",
            set(popular),
            "sessions confined to the four most popular areas",
        ),
    ]
    for predicate, items, description in questions:
        print(f"{description}\n  query: {predicate} {sorted(map(str, items))}")
        for index in (inverted_file, oif):
            index.drop_cache()
            result = index.measured_query(predicate, items)
            print(
                f"  {index.name:>3}: {result.cardinality:5d} sessions, "
                f"{result.page_accesses:4d} page accesses"
            )
        print()

    # --- a new day of traffic arrives -------------------------------------------
    updatable = UpdatableOIF(sessions)
    new_day = generate_msweb(MswebConfig(num_sessions=1_000, replicas=1, seed=99))
    updatable.insert(set(record.items) for record in new_day)
    print(f"buffered {updatable.pending_updates} fresh sessions in the in-memory delta index")
    probe = {area_name(0)}
    before = len(updatable.subset_query(probe))
    report = updatable.flush()
    after = len(updatable.subset_query(probe))
    print(
        f"merged them in {report.merge_seconds * 1000:.1f} ms "
        f"({report.seconds_per_record * 1000:.3f} ms per session); "
        f"answers for {sorted(probe)} stayed consistent: {before} before, {after} after"
    )


if __name__ == "__main__":
    main()
