"""Reproduce one of the paper's figures programmatically.

Run with::

    python examples/reproduce_figure.py [fig7-msweb|fig7-msnbc|fig8|fig9|fig10] [base_records]

This is the scripting counterpart of ``repro-oif experiment ...``: it calls the
experiment functions in :mod:`repro.experiments.figures` directly, which is the
route to take when you want to change sweep parameters (domain sizes, query
sizes, skew values) or push the dataset sizes towards the paper's scale.
"""

from __future__ import annotations

import sys

from repro.experiments import figure7, figure8, figure9, figure10, render_tables
from repro.experiments.figures import SyntheticScale


def main(which: str = "fig9", base_records: int = 10_000) -> None:
    scale = SyntheticScale(base_records=base_records, queries_per_size=3)
    if which == "fig7-msweb":
        tables = [figure7("msweb", queries_per_size=3)]
    elif which == "fig7-msnbc":
        tables = [figure7("msnbc", queries_per_size=3)]
    elif which == "fig8":
        tables = list(figure8(scale).values())
    elif which == "fig10":
        tables = list(figure10(scale).values())
    else:
        tables = list(figure9(scale).values())
    print(render_tables(tables))
    print(
        "\nColumns ending in _pages are mean disk page accesses per query — the metric\n"
        "the paper plots; _io_ms is simulated I/O time, _cpu_ms measured CPU time."
    )


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "fig9"
    base = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    main(which, base)
