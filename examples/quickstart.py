"""Quickstart: index a small set-valued table and run the three containment queries.

Run with::

    python examples/quickstart.py

The example mirrors the running example of the paper (Figure 1): a tiny
relation of set-valued records, indexed by the Ordered Inverted File, queried
with subset / equality / superset predicates, and compared against the classic
inverted file on both answers and I/O cost.
"""

from __future__ import annotations

from repro import Dataset, InvertedFile, OrderedInvertedFile

# The example relation of Figure 1 in the paper: 18 records over items a..j.
TRANSACTIONS = [
    {"g", "b", "a", "d"},
    {"a", "e", "b"},
    {"f", "e", "a", "b"},
    {"d", "b", "a"},
    {"a", "b", "f", "c"},
    {"c", "a"},
    {"d", "h"},
    {"b", "a", "f"},
    {"b", "c"},
    {"j", "b", "g"},
    {"a", "c", "b"},
    {"i", "d"},
    {"a"},
    {"a", "d"},
    {"j", "c", "a"},
    {"i", "c"},
    {"a", "c", "h"},
    {"d", "c"},
]


def main() -> None:
    dataset = Dataset.from_transactions(TRANSACTIONS, start_id=101)
    print(f"indexed {len(dataset)} records over {dataset.domain_size} items\n")

    oif = OrderedInvertedFile(dataset)
    inverted_file = InvertedFile(dataset)

    queries = [
        ("subset", {"a", "d"}, "records containing both a and d"),
        ("equality", {"a", "c"}, "records whose set-value is exactly {a, c}"),
        ("superset", {"a", "c"}, "records whose items are all within {a, c}"),
    ]

    for predicate, items, description in queries:
        print(f"{predicate} query {sorted(items)} — {description}")
        for index in (inverted_file, oif):
            index.drop_cache()
            result = index.measured_query(predicate, items)
            print(
                f"  {index.name:>3}: records {list(result.record_ids)} "
                f"({result.page_accesses} page accesses)"
            )
        print()

    report = oif.build_report
    assert report is not None
    print(
        "OIF structure: "
        f"{report.num_blocks} blocks, {report.num_postings} stored postings, "
        f"{report.postings_saved_by_metadata} postings replaced by the metadata table"
    )


if __name__ == "__main__":
    main()
