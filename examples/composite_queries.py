"""Composite queries: the expression API, the planner and streaming cursors.

Run with::

    python examples/composite_queries.py

The script builds a small market-basket dataset, then answers one boolean
query three ways — directly on an index, through the experiment runner, and
over HTTP via the query service — and finally shows what the
selectivity-aware planner and the streaming ``limit`` cursors buy.
"""

from __future__ import annotations

from repro import And, Dataset, Not, OrderedInvertedFile, Subset, Superset
from repro.core.query import Planner
from repro.experiments import ExperimentRunner
from repro.workloads import Query

TRANSACTIONS = [
    {"milk", "bread", "eggs"},
    {"milk", "bread"},
    {"bread", "butter", "jam"},
    {"milk"},
    {"milk", "butter", "jam", "tea"},
    {"jam", "tea"},
    {"milk", "bread", "butter", "jam"},
    {"bread"},
    {"milk", "tea"},
]

#: "Baskets with milk that are *not* just a milk-and-bread run":
#: Subset(milk) ∧ ¬Superset({milk, bread}).
EXPRESSION = And((Subset({"milk"}), Not(Superset({"milk", "bread"}))))


def query_via_index(dataset: Dataset) -> None:
    oif = OrderedInvertedFile(dataset)
    print("expression:", EXPRESSION.canonical_key())
    print("plan:\n" + oif.execute(EXPRESSION).explain())
    print("answers via OIF:", oif.evaluate(EXPRESSION))

    # Streaming: a limited cursor stops pulling from the index early.
    cursor = oif.execute(Subset({"milk"}).limit(2))
    print("first two milk baskets:", cursor.fetch_all(), "\n")


def query_via_runner(dataset: Dataset) -> None:
    runner = ExperimentRunner()
    oif = OrderedInvertedFile(dataset)
    run = runner.run_queries(oif, [Query(EXPRESSION)])
    cost = run.overall()
    print(
        f"runner: {cost.num_queries} query, {cost.mean_answers:.0f} answers, "
        f"{cost.mean_page_accesses:.1f} page accesses\n"
    )


def query_via_service(dataset: Dataset) -> None:
    from repro import ServiceClient, ServiceServer

    with ServiceServer(port=0) as server:
        client = ServiceClient(port=server.port)
        client.create_index("baskets", transactions=[sorted(t) for t in TRANSACTIONS])
        first = client.query_expr("baskets", EXPRESSION)
        again = client.query_expr("baskets", EXPRESSION)
        print(
            "service:", first["record_ids"],
            f"(cached on repeat: {again['cached']})\n",
        )


def show_planner_ordering(dataset: Dataset) -> None:
    planner = Planner(dataset)
    rare_first = planner.plan(And((Subset({"milk"}), Subset({"tea"}))))
    print("rarest-conjunct-first plan:\n" + rare_first.explain())


def main() -> None:
    dataset = Dataset.from_transactions(TRANSACTIONS)
    query_via_index(dataset)
    query_via_runner(dataset)
    query_via_service(dataset)
    show_planner_ordering(dataset)


if __name__ == "__main__":
    main()
